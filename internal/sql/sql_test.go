package sql

import (
	"fmt"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/mdb"
	"doppiodb/internal/strmatch"
	"doppiodb/internal/workload"
)

func addressEngine(t *testing.T, n int, kind workload.HitKind, sel float64) (*Engine, int) {
	t.Helper()
	db := mdb.New(nil)
	rows, hits := workload.NewGenerator(77, 64).Table(n, kind, sel)
	if _, err := db.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	return NewEngine(db), hits
}

func oneCount(t *testing.T, e *Engine, q string) (int64, *Result) {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("want single count cell, got %v", res.Rows)
	}
	n, ok := res.Rows[0][0].(int64)
	if !ok {
		t.Fatalf("count is %T", res.Rows[0][0])
	}
	return n, res
}

func TestSelectCountLikeFastPath(t *testing.T) {
	e, hits := addressEngine(t, 10_000, workload.HitQ1, 0.2)
	n, res := oneCount(t, e,
		`SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%';`)
	if int(n) != hits {
		t.Errorf("count = %d, want %d", n, hits)
	}
	if res.FastPath != "like" {
		t.Errorf("fast path = %q, want like", res.FastPath)
	}
	if res.Work.Rows != 10_000 {
		t.Errorf("work rows = %d", res.Work.Rows)
	}
}

func TestSelectCountRegexpFastPath(t *testing.T) {
	e, hits := addressEngine(t, 10_000, workload.HitQ2, 0.2)
	// Both argument orders the paper uses.
	for _, q := range []string{
		`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`,
		`SELECT count(*) FROM address_table WHERE REGEXP_LIKE('(Strasse|Str\.).*(8[0-9]{4})', address_string)`,
	} {
		n, res := oneCount(t, e, q)
		if int(n) != hits {
			t.Errorf("count = %d, want %d", n, hits)
		}
		if res.FastPath != "regexp" {
			t.Errorf("fast path = %q", res.FastPath)
		}
		if res.Work.Steps == 0 {
			t.Error("no steps counted")
		}
	}
}

func TestSelectCountContains(t *testing.T) {
	e, hits := addressEngine(t, 6_000, workload.HitTable1, 0.2)
	n, res := oneCount(t, e,
		`SELECT count(*) FROM address_table WHERE CONTAINS('Alan & Turing & Cheshire')`)
	if int(n) != hits {
		t.Errorf("count = %d, want %d", n, hits)
	}
	if res.FastPath != "contains" {
		t.Errorf("fast path = %q", res.FastPath)
	}
}

func TestRegexpFPGAUDFPath(t *testing.T) {
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(77, 64).Table(10_000, workload.HitQ3, 0.2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s.DB)
	n, res := oneCount(t, e,
		`SELECT count(*) FROM address_table WHERE REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) <> 0`)
	if int(n) != hits {
		t.Errorf("count = %d, want %d", n, hits)
	}
	if res.FastPath != "udf" || res.UDF == nil {
		t.Errorf("UDF path not taken: %q %v", res.FastPath, res.UDF)
	}
	if res.UDF.HWSeconds <= 0 {
		t.Error("no hardware time")
	}
	// `= 0` counts the complement.
	n0, _ := oneCount(t, e,
		`SELECT count(*) FROM address_table WHERE REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) = 0`)
	if int(n+n0) != 10_000 {
		t.Errorf("match + nonmatch = %d", n+n0)
	}
}

func TestOperatorsAgree(t *testing.T) {
	// Table 1's setup: the same predicate through CONTAINS, LIKE and
	// REGEXP_LIKE must select the same rows.
	e, hits := addressEngine(t, 5_000, workload.HitTable1, 0.2)
	qs := []string{
		`SELECT count(*) FROM address_table WHERE CONTAINS('Alan & Turing & Cheshire')`,
		`SELECT count(*) FROM address_table WHERE address_string LIKE '%Alan%Turing%Cheshire%'`,
		`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, 'Alan.*Turing.*Cheshire')`,
	}
	for _, q := range qs {
		n, _ := oneCount(t, e, q)
		if int(n) != hits {
			t.Errorf("%s: count %d, want %d", q, n, hits)
		}
	}
}

func TestGeneralPipelineProjectionAndWhere(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t",
		mdb.ColSpec{Name: "id", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "name", Kind: mdb.KindString})
	for i, name := range []string{"alpha", "beta", "gamma", "alphabet"} {
		tbl.AppendRow(i, name)
	}
	e := NewEngine(db)
	res, err := e.Query(`SELECT id, name FROM t WHERE name LIKE 'alpha%' ORDER BY id DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].(int64) != 3 || res.Rows[1][0].(int64) != 0 {
		t.Errorf("order: %v", res.Rows)
	}
	if res.Cols[1] != "name" {
		t.Errorf("cols: %v", res.Cols)
	}
}

func TestGroupByCountAndHaving(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t",
		mdb.ColSpec{Name: "k", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "v", Kind: mdb.KindString})
	for i := 0; i < 10; i++ {
		tbl.AppendRow(i%3, fmt.Sprintf("v%d", i))
	}
	e := NewEngine(db)
	res, err := e.Query(`SELECT k, count(*) AS n FROM t GROUP BY k ORDER BY n DESC, k ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %v", res.Rows)
	}
	// k=0 has 4 rows; k=1 and k=2 have 3 each.
	if res.Rows[0][0].(int64) != 0 || res.Rows[0][1].(int64) != 4 {
		t.Errorf("first group: %v", res.Rows[0])
	}
	if res.Rows[1][0].(int64) != 1 || res.Rows[2][0].(int64) != 2 {
		t.Errorf("tie order: %v", res.Rows)
	}
}

func TestLimitAndStar(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t", mdb.ColSpec{Name: "id", Kind: mdb.KindInt})
	for i := 0; i < 5; i++ {
		tbl.AppendRow(i)
	}
	e := NewEngine(db)
	res, err := e.Query(`SELECT * FROM t ORDER BY id LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1][0].(int64) != 1 {
		t.Errorf("limit: %v", res.Rows)
	}
}

// tpchQ13SQL is the exact query of §7.7.
const tpchQ13SQL = `
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, count(o_orderkey)
  FROM customer
  LEFT OUTER JOIN orders ON
    c_custkey = o_custkey
    AND o_comment NOT LIKE '%special%requests%'
  GROUP BY c_custkey
) AS c_orders (c_custkey, c_count)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC;`

func loadTPCH(t *testing.T, e *Engine, tp *workload.TPCH) {
	t.Helper()
	cust, err := e.DB.CreateTable("customer",
		mdb.ColSpec{Name: "c_custkey", Kind: mdb.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tp.Customers {
		cust.AppendRow(c.CustKey)
	}
	ord, err := e.DB.CreateTable("orders",
		mdb.ColSpec{Name: "o_orderkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_custkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_comment", Kind: mdb.KindString})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range tp.Orders {
		ord.AppendRow(o.OrderKey, o.CustKey, o.Comment)
	}
}

func TestTPCHQ13MatchesReference(t *testing.T) {
	tp := workload.GenerateTPCH(13, 0.01, 0.01)
	e := NewEngine(mdb.New(nil))
	loadTPCH(t, e, tp)

	res, err := e.Query(tpchQ13SQL)
	if err != nil {
		t.Fatal(err)
	}
	lp, _ := strmatch.CompileLike(`%special%requests%`, false)
	want := tp.Q13Reference(func(c string) bool { return lp.MatchString(c) })

	if len(res.Rows) != len(want) {
		t.Fatalf("Q13 groups = %d, want %d", len(res.Rows), len(want))
	}
	prevDist := int64(1 << 62)
	prevCount := int64(1 << 62)
	for _, row := range res.Rows {
		cCount := row[0].(int64)
		dist := row[1].(int64)
		if want[int(cCount)] != int(dist) {
			t.Errorf("c_count %d: custdist %d, want %d", cCount, dist, want[int(cCount)])
		}
		// ORDER BY custdist DESC, c_count DESC.
		if dist > prevDist || (dist == prevDist && cCount > prevCount) {
			t.Errorf("order violated at c_count=%d", cCount)
		}
		prevDist, prevCount = dist, cCount
	}
	if res.Work.Comparisons == 0 {
		t.Error("Q13 scan work not recorded")
	}
}

func TestParseErrors(t *testing.T) {
	e := NewEngine(mdb.New(nil))
	bad := []string{
		``,
		`SELECT`,
		`SELECT count(* FROM t`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t ORDER BY`,
		`SELECT a FROM (SELECT b FROM u)`, // derived table needs alias
		`SELECT a FROM t WHERE a LIKE b`,  // pattern must be a literal
		`SELECT a FROM t; SELECT b FROM t`,
		`SELECT a FROM t LIMIT x`,
		`SELECT a FROM t WHERE 'abc`,
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}

func TestUnknownColumnAndTableErrors(t *testing.T) {
	db := mdb.New(nil)
	db.CreateTable("t", mdb.ColSpec{Name: "id", Kind: mdb.KindInt})
	e := NewEngine(db)
	if _, err := e.Query(`SELECT id FROM missing`); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := e.Query(`SELECT nope FROM t`); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := e.Query(`SELECT id FROM t ORDER BY nope`); err == nil {
		t.Error("bad order column accepted")
	}
}

func TestLeftOuterJoinNullPadding(t *testing.T) {
	db := mdb.New(nil)
	l, _ := db.CreateTable("l", mdb.ColSpec{Name: "k", Kind: mdb.KindInt})
	r, _ := db.CreateTable("r",
		mdb.ColSpec{Name: "rk", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "val", Kind: mdb.KindString})
	for i := 0; i < 4; i++ {
		l.AppendRow(i)
	}
	r.AppendRow(1, "one")
	r.AppendRow(3, "three")
	r.AppendRow(3, "tres")
	e := NewEngine(db)
	res, err := e.Query(`SELECT k, count(val) AS n FROM l LEFT OUTER JOIN r ON k = rk GROUP BY k ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	wantN := map[int64]int64{0: 0, 1: 1, 2: 0, 3: 2}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for _, row := range res.Rows {
		if wantN[row[0].(int64)] != row[1].(int64) {
			t.Errorf("k=%v n=%v, want %v", row[0], row[1], wantN[row[0].(int64)])
		}
	}
}

func TestInnerJoin(t *testing.T) {
	db := mdb.New(nil)
	l, _ := db.CreateTable("l", mdb.ColSpec{Name: "k", Kind: mdb.KindInt})
	r, _ := db.CreateTable("r", mdb.ColSpec{Name: "rk", Kind: mdb.KindInt})
	for i := 0; i < 4; i++ {
		l.AppendRow(i)
	}
	r.AppendRow(1)
	r.AppendRow(3)
	e := NewEngine(db)
	res, err := e.Query(`SELECT k FROM l JOIN r ON k = rk ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].(int64) != 1 || res.Rows[1][0].(int64) != 3 {
		t.Errorf("inner join: %v", res.Rows)
	}
}

func TestAdvisorRoutesRegexpToUDF(t *testing.T) {
	// §9's cost-based placement: with the system as advisor, a plain
	// REGEXP_LIKE is transparently offloaded to the hardware UDF.
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(55, 64).Table(20_000, workload.HitQ2, 0.2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s.DB)
	e.Advisor = s
	q := `SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`
	n, res := oneCount(t, e, q)
	if int(n) != hits {
		t.Errorf("count = %d, want %d", n, hits)
	}
	if res.FastPath != "regexp->udf" {
		t.Errorf("fast path = %q, want regexp->udf", res.FastPath)
	}
	if res.UDF == nil || res.UDF.HWSeconds <= 0 {
		t.Error("offloaded query has no hardware accounting")
	}
	// Without the advisor the same query runs in software.
	e.Advisor = nil
	_, res = oneCount(t, e, q)
	if res.FastPath != "regexp" {
		t.Errorf("fast path without advisor = %q", res.FastPath)
	}
}

func TestAggregatesSumMinMaxAvg(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t",
		mdb.ColSpec{Name: "k", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "v", Kind: mdb.KindInt})
	vals := map[int][]int{0: {10, 20, 30}, 1: {5, 15}}
	for k, vs := range vals {
		for _, v := range vs {
			tbl.AppendRow(k, v)
		}
	}
	e := NewEngine(db)
	res, err := e.Query(`SELECT k, sum(v) AS s, min(v) AS lo, max(v) AS hi, avg(v) AS a, count(*) AS n
		FROM t GROUP BY k ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{0, 60, 10, 30, 20, 3}, {1, 20, 5, 15, 10, 2}}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for i, w := range want {
		for j, x := range w {
			if res.Rows[i][j].(int64) != x {
				t.Errorf("row %d col %d = %v, want %d", i, j, res.Rows[i][j], x)
			}
		}
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := mdb.New(nil)
	db.CreateTable("t", mdb.ColSpec{Name: "v", Kind: mdb.KindInt})
	e := NewEngine(db)
	res, err := e.Query(`SELECT count(*), sum(v), min(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].(int64) != 0 || res.Rows[0][1] != nil || res.Rows[0][2] != nil {
		t.Errorf("empty aggregates: %v", res.Rows[0])
	}
}

func TestHaving(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t", mdb.ColSpec{Name: "k", Kind: mdb.KindInt})
	for i := 0; i < 10; i++ {
		tbl.AppendRow(i % 3) // k=0: 4 rows, k=1: 3, k=2: 3
	}
	e := NewEngine(db)
	res, err := e.Query(`SELECT k, count(*) AS n FROM t GROUP BY k HAVING n > 3 ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 0 || res.Rows[0][1].(int64) != 4 {
		t.Errorf("HAVING result: %v", res.Rows)
	}
	// HAVING referencing a group key.
	res, err = e.Query(`SELECT k, count(*) AS n FROM t GROUP BY k HAVING k <> 1 ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("HAVING on key: %v", res.Rows)
	}
}

func TestAggregateErrors(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t",
		mdb.ColSpec{Name: "k", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "s", Kind: mdb.KindString})
	tbl.AppendRow(1, "x")
	e := NewEngine(db)
	if _, err := e.Query(`SELECT sum(s) FROM t GROUP BY k`); err == nil {
		t.Error("SUM over strings accepted")
	}
	if _, err := e.Query(`SELECT k, sum(k) FROM t WHERE sum(k) > 1 GROUP BY k`); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
	// MIN/MAX over strings is fine (lexicographic).
	res, err := e.Query(`SELECT min(s), max(s) FROM t`)
	if err != nil || res.Rows[0][0].(string) != "x" {
		t.Errorf("MIN over strings: %v %v", res, err)
	}
}
