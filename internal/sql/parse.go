package sql

import (
	"strconv"
	"strings"
)

// Parse parses one SELECT statement (optionally `;`-terminated).
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKw("EXPLAIN")
	analyze := explain && p.acceptKw("ANALYZE")
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	p.acceptSym(";")
	if p.peek().kind != tkEOF {
		return nil, errf(p.peek().pos, "unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok    { return p.toks[p.pos] }
func (p *parser) advance() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.kind == tkKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errf(p.peek().pos, "expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tkSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return errf(p.peek().pos, "expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	p.acceptKw("DISTINCT") // accepted and treated as a no-op for counts
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				it.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, it)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.peek()
		if t.kind != tkNumber {
			return nil, errf(t.pos, "expected number after LIMIT")
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errf(t.pos, "bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSym("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		t := p.peek()
		if t.kind != tkIdent {
			return item, errf(t.pos, "expected alias after AS")
		}
		p.advance()
		item.Alias = t.text
	} else if t := p.peek(); t.kind == tkIdent {
		// Bare alias: `count(o_orderkey) cnt`.
		p.advance()
		item.Alias = t.text
	}
	return item, nil
}

// parseTableRef = primaryTable (JOIN primaryTable ON expr)*
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTable()
	if err != nil {
		return nil, err
	}
	for {
		leftOuter := false
		save := p.pos
		if p.acceptKw("LEFT") {
			p.acceptKw("OUTER")
			leftOuter = true
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		} else if p.acceptKw("INNER") {
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKw("JOIN") {
			p.pos = save
			return left, nil
		}
		right, err := p.parsePrimaryTable()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinTable{Left: left, Right: right, LeftOuter: leftOuter, On: on}
	}
}

func (p *parser) parsePrimaryTable() (TableRef, error) {
	if p.acceptSym("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		st := &SubqueryTable{Query: sub}
		p.acceptKw("AS")
		t := p.peek()
		if t.kind != tkIdent {
			return nil, errf(t.pos, "derived table needs an alias")
		}
		p.advance()
		st.Alias = t.text
		if p.acceptSym("(") {
			for {
				ct := p.peek()
				if ct.kind != tkIdent {
					return nil, errf(ct.pos, "expected column alias")
				}
				p.advance()
				st.Columns = append(st.Columns, ct.text)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	t := p.peek()
	if t.kind != tkIdent {
		return nil, errf(t.pos, "expected table name, found %q", t.text)
	}
	p.advance()
	bt := &BaseTable{Name: t.text}
	if p.acceptKw("AS") {
		a := p.peek()
		if a.kind != tkIdent {
			return nil, errf(a.pos, "expected alias after AS")
		}
		p.advance()
		bt.Alias = a.text
	} else if a := p.peek(); a.kind == tkIdent {
		p.advance()
		bt.Alias = a.text
	}
	return bt, nil
}

// Expression grammar: or := and (OR and)*; and := not (AND not)*;
// not := NOT not | cmp; cmp := primary ((=|<>|<|<=|>|>=) primary |
// [NOT] LIKE str | IS [NOT] NULL)?
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		sub, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Sub: sub}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// [NOT] LIKE / ILIKE
	negated := false
	save := p.pos
	if p.acceptKw("NOT") {
		if t := p.peek(); t.kind == tkKeyword && (t.text == "LIKE" || t.text == "ILIKE") {
			negated = true
		} else {
			p.pos = save
			return left, nil
		}
	}
	if p.acceptKw("LIKE") || p.acceptKw("ILIKE") {
		fold := p.toks[p.pos-1].text == "ILIKE"
		t := p.peek()
		if t.kind != tkString {
			return nil, errf(t.pos, "expected pattern string after LIKE")
		}
		p.advance()
		return &LikeExpr{Operand: left, Pattern: t.text, Fold: fold, Negated: negated}, nil
	}
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Operand: left, Negated: neg}, nil
	}
	for _, op := range []string{"<>", "<=", ">=", "=", "<", ">"} {
		if p.acceptSym(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

// parseAdd = parseMul (('+'|'-') parseMul)*
func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("+"):
			op = "+"
		case p.acceptSym("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

// parseMul = unary (('*'|'/') unary)*
func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("*"):
			op = "*"
		case p.acceptSym("/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

// parseUnary handles a leading '-' (negative literals and negation).
func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", Left: &IntLit{Val: 0}, Right: sub}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkString:
		p.advance()
		return &StringLit{Val: t.text}, nil
	case t.kind == tkNumber:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return &IntLit{Val: v}, nil
	case t.kind == tkKeyword && t.text == "NULL":
		p.advance()
		return &NullLit{}, nil
	case t.kind == tkKeyword && t.text == "COUNT":
		p.advance()
		return p.parseCall("COUNT")
	case t.kind == tkSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkIdent:
		p.advance()
		name := t.text
		if p.peek().kind == tkSymbol && p.peek().text == "(" {
			return p.parseCall(strings.ToUpper(name))
		}
		if p.acceptSym(".") {
			c := p.peek()
			if c.kind != tkIdent {
				return nil, errf(c.pos, "expected column after %q.", name)
			}
			p.advance()
			return &ColumnRef{Table: name, Column: c.Column()}, nil
		}
		return &ColumnRef{Column: name}, nil
	}
	return nil, errf(t.pos, "unexpected %q in expression", t.text)
}

// Column helper: tok → identifier text.
func (t tok) Column() string { return t.text }

func (p *parser) parseCall(name string) (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: name}
	if p.acceptSym("*") {
		call.Star = true
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptSym(")") {
		return call, nil
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return call, nil
}
