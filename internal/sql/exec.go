package sql

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"doppiodb/internal/explain"
	"doppiodb/internal/hal"
	"doppiodb/internal/mdb"
	"doppiodb/internal/obs"
	"doppiodb/internal/perf"
	"doppiodb/internal/plan"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// PlacementAdvisor is the optimizer hook of the paper's §9 discussion: a
// cost model that decides whether a REGEXP_LIKE predicate should run on
// its software implementation or be offloaded to the hardware operator.
// internal/core's System implements it.
type PlacementAdvisor interface {
	// AdviseOffload reports whether the FPGA implementation is expected
	// to be faster for this pattern over rows strings of avgLen bytes.
	AdviseOffload(pattern string, rows, avgLen int) bool
}

// Engine executes SQL over the column store.
type Engine struct {
	DB *mdb.DB
	// Advisor, when set, lets the engine transparently route
	// REGEXP_LIKE predicates to the hardware UDF when the cost model
	// predicts a win (§9's "the query optimizer will then be able to
	// dynamically decide where an operator ... will be executed").
	Advisor PlacementAdvisor
	// Tel receives query-level metrics (query counts, fast-path hits,
	// rows out). Nil is safe: metrics are recorded into detached
	// instances and simply not exported.
	Tel *telemetry.Registry
	// ID labels this engine's sessions in pprof profiles
	// (doppio.session); NewEngine assigns s1, s2, ... per process.
	ID string
	// QueryBudget, when positive, attaches a simulated-time deadline to
	// every query: the HAL refuses admission when the cost model's ETA
	// already exceeds the budget and aborts queued work that outlives it
	// (hal.ErrDeadlineExceeded, errors.Is-able as
	// context.DeadlineExceeded).
	QueryBudget sim.Time
	// Plans is the bounded LRU plan cache, keyed by the normalized
	// statement plus the versions of every base table it touches. A hit
	// reuses the cost model's placement decision (no re-estimation) and
	// rides the core layer's compiled-config cache, so repeat patterns
	// skip Glushkov construction and the 512-bit encode. Nil disables
	// caching (struct-literal Engines); NewEngine wires one in.
	Plans *plan.Cache

	queries atomic.Int64
}

// engineSeq numbers engines process-wide for the pprof session label.
var engineSeq atomic.Int64

// NewEngine wraps a database.
func NewEngine(db *mdb.DB) *Engine {
	return &Engine{
		DB:    db,
		Tel:   db.Tel,
		ID:    "s" + strconv.FormatInt(engineSeq.Add(1), 10),
		Plans: plan.NewCache(128, db.Tel, "plan.cache"),
	}
}

// Result is a query result with work accounting.
type Result struct {
	Cols []string
	Rows [][]any
	// Work is the software scan work (for the perf model).
	Work perf.Work
	// FastPath names the BAT-algebra shortcut taken: "like", "regexp",
	// "contains", "udf", or "" for the general executor.
	FastPath string
	// UDF carries the HUDF's accounting when the query offloaded.
	UDF *mdb.UDFResult
	// Trace is the query-lifecycle span tree (sql-parse → scan/pipeline
	// operators, with the HUDF's hardware sub-tree adopted when the query
	// offloaded).
	Trace *telemetry.Span
	// Decision is the placement decision record (EXPLAIN's view) when the
	// query carried a hardware-eligible predicate: candidate plans,
	// predicted cost terms, and — once executed — per-term error.
	Decision *explain.Record
	// Plan is the executed physical-operator tree: per-operator placement,
	// plan-cache status, and observed row counts (doppiosh's \plan view).
	Plan *plan.Node
}

// Query parses and executes one SELECT.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext parses and executes one SELECT under ctx: cancellation
// propagates into the hardware operator, aborting its not-yet-granted FPGA
// jobs. The Engine itself is stateless across queries, so concurrent
// sessions may share one Engine or hold one each.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.QueryBudget > 0 {
		ctx = hal.WithBudget(ctx, e.QueryBudget)
	}
	root := telemetry.StartSpan("query")
	p := root.StartChild("sql-parse")
	stmt, err := Parse(src)
	p.End()
	if err != nil {
		e.Tel.Counter("sql.parse_errors").Inc()
		return nil, err
	}
	// Label the serving goroutine so /debug/pprof profiles attribute
	// samples per session and query (core adds the placement label), and
	// thread the same identity down the context so the wide event emitted
	// at query completion can name the caller.
	qid := strconv.FormatInt(e.queries.Add(1), 10)
	ctx = obs.WithQueryInfo(ctx, e.ID, qid)
	var res *Result
	pprof.Do(ctx, pprof.Labels("doppio.session", e.ID, "doppio.query", qid),
		func(ctx context.Context) {
			res, err = e.exec(ctx, stmt, root)
		})
	return res, err
}

// Exec executes a parsed statement.
func (e *Engine) Exec(stmt *SelectStmt) (*Result, error) {
	return e.exec(context.Background(), stmt, telemetry.StartSpan("query"))
}

// exec is the query entry point: compile the statement into a physical
// operator tree (planner.go), then drive the tree (physexec.go). All
// execution — fast counts included — flows through internal/plan operators;
// the pre-operator inline path survives only as the equivalence-test
// reference in legacy.go.
func (e *Engine) exec(ctx context.Context, stmt *SelectStmt, root *telemetry.Span) (*Result, error) {
	e.Tel.Counter("sql.queries").Inc()
	if stmt.Explain {
		return e.explainQuery(ctx, stmt, root)
	}
	p, err := e.plan(stmt, root)
	if err != nil {
		return nil, err
	}
	res, err := e.execPlan(ctx, p, root)
	if err != nil {
		return nil, err
	}
	if res.FastPath != "" {
		e.Tel.Counter("sql.fastpath." + metricKey(res.FastPath)).Inc()
	}
	return e.finish(res, root), nil
}

// finish closes the query's root span, grafting the HUDF's span tree under
// it when the query offloaded, and records the output row count.
func (e *Engine) finish(res *Result, root *telemetry.Span) *Result {
	if res.UDF != nil && res.UDF.Trace != nil {
		root.Adopt(res.UDF.Trace)
	}
	root.End()
	res.Trace = root
	e.Tel.Counter("sql.rows_out").Add(int64(len(res.Rows)))
	return res
}

// metricKey normalizes a fast-path label for use inside a metric name.
func metricKey(s string) string {
	if s == "" {
		return "none"
	}
	return strings.ReplaceAll(s, "->", "_")
}

// avgStringLen estimates the column's average payload length for the cost
// model (sampled from the heap accounting).
func avgStringLen(tbl *mdb.Table, colName string) int {
	col, err := tbl.Column(colName)
	if err != nil || col.Kind != mdb.KindString || col.Strs.Count() == 0 {
		return 64
	}
	return col.Strs.PayloadBytes() / col.Strs.Count()
}

// likeColumn extracts the column name of a LIKE over this table.
func likeColumn(w *LikeExpr, alias string) (string, bool) {
	ref, ok := w.Operand.(*ColumnRef)
	if !ok {
		return "", false
	}
	if ref.Table != "" && strings.ToLower(ref.Table) != alias {
		return "", false
	}
	return ref.Column, true
}

// containsArgs handles CONTAINS('a & b') over the table's single string
// column and CONTAINS(col, 'a & b').
func containsArgs(w *FuncCall, tbl *mdb.Table) (col, query string, err error) {
	switch len(w.Args) {
	case 1:
		q, ok := w.Args[0].(*StringLit)
		if !ok {
			return "", "", fmt.Errorf("sql: CONTAINS wants a query literal")
		}
		for _, c := range tbl.Columns() {
			if c.Kind == mdb.KindString {
				if col != "" {
					return "", "", fmt.Errorf("sql: CONTAINS needs an explicit column (table has several)")
				}
				col = c.Name
			}
		}
		if col == "" {
			return "", "", fmt.Errorf("sql: table %s has no string column", tbl.Name)
		}
		return col, q.Val, nil
	case 2:
		ref, ok1 := w.Args[0].(*ColumnRef)
		q, ok2 := w.Args[1].(*StringLit)
		if !ok1 || !ok2 {
			return "", "", fmt.Errorf("sql: CONTAINS wants (column, query)")
		}
		return ref.Column, q.Val, nil
	}
	return "", "", fmt.Errorf("sql: CONTAINS wants 1 or 2 arguments")
}

// fpgaPredicate matches REGEXP_FPGA(...) <> 0 (or = 0), returning the call
// and whether the comparison selects non-matches.
func fpgaPredicate(w *BinaryExpr) (call *FuncCall, selectsZero bool) {
	if w.Op != "<>" && w.Op != "=" {
		return nil, false
	}
	c, ok := w.Left.(*FuncCall)
	lit, ok2 := w.Right.(*IntLit)
	if !ok || !ok2 {
		c, ok = w.Right.(*FuncCall)
		lit, ok2 = w.Left.(*IntLit)
		if !ok || !ok2 {
			return nil, false
		}
	}
	if c.Name != "REGEXP_FPGA" || lit.Val != 0 {
		return nil, false
	}
	return c, w.Op == "="
}

func (e *Engine) materializeBase(t *BaseTable) (*relation, error) {
	tbl, err := e.DB.Table(t.Name)
	if err != nil {
		return nil, err
	}
	alias := strings.ToLower(t.Alias)
	if alias == "" {
		alias = strings.ToLower(t.Name)
	}
	rel := &relation{}
	for _, c := range tbl.Columns() {
		rel.cols = append(rel.cols, colMeta{table: alias, name: strings.ToLower(c.Name)})
	}
	n := tbl.Rows()
	rel.rows = make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(tbl.Columns()))
		for j, c := range tbl.Columns() {
			switch c.Kind {
			case mdb.KindInt:
				row[j] = int64(c.Ints.Get(i))
			case mdb.KindString:
				row[j] = c.Strs.GetString(i)
			case mdb.KindShort:
				row[j] = int64(c.Shorts.Get(i))
			}
		}
		rel.rows[i] = row
	}
	return rel, nil
}

func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// findEquiKey locates one left-col = right-col conjunct to hash on.
func findEquiKey(left, right *relation, conjuncts []Expr) (lk, rk int, residual []Expr, err error) {
	lk, rk = -1, -1
	for _, c := range conjuncts {
		if lk >= 0 {
			residual = append(residual, c)
			continue
		}
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			residual = append(residual, c)
			continue
		}
		lr, ok1 := b.Left.(*ColumnRef)
		rr, ok2 := b.Right.(*ColumnRef)
		if !ok1 || !ok2 {
			residual = append(residual, c)
			continue
		}
		if li, e1 := left.resolve(lr); e1 == nil {
			if ri, e2 := right.resolve(rr); e2 == nil {
				lk, rk = li, ri
				continue
			}
		}
		if li, e1 := left.resolve(rr); e1 == nil {
			if ri, e2 := right.resolve(lr); e2 == nil {
				lk, rk = li, ri
				continue
			}
		}
		residual = append(residual, c)
	}
	if lk < 0 {
		return 0, 0, nil, fmt.Errorf("sql: join requires an equality condition between the two sides")
	}
	return lk, rk, residual, nil
}

// exprUsesOnly reports whether every column reference in e resolves within
// rel.
func exprUsesOnly(e Expr, rel *relation) bool {
	ok := true
	var walk func(Expr)
	walk = func(x Expr) {
		if !ok || x == nil {
			return
		}
		switch n := x.(type) {
		case *ColumnRef:
			if _, err := rel.resolve(n); err != nil {
				ok = false
			}
		case *BinaryExpr:
			walk(n.Left)
			walk(n.Right)
		case *NotExpr:
			walk(n.Sub)
		case *IsNullExpr:
			walk(n.Operand)
		case *LikeExpr:
			walk(n.Operand)
		case *FuncCall:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}

// aggNames are the supported aggregate functions.
var aggNames = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

func isAggregate(e Expr) (*FuncCall, bool) {
	c, ok := e.(*FuncCall)
	if !ok || !aggNames[c.Name] {
		return nil, false
	}
	return c, true
}

func hasAggregate(items []SelectItem) bool {
	for _, it := range items {
		if _, ok := isAggregate(it.Expr); ok {
			return true
		}
	}
	return false
}

// accumulator folds one aggregate over a group.
type accumulator struct {
	call  *FuncCall
	count int64
	sum   int64
	min   any
	max   any
	seen  bool
}

func (a *accumulator) add(v any) error {
	if a.call.Star { // COUNT(*)
		a.count++
		return nil
	}
	if v == nil {
		return nil
	}
	a.count++
	switch a.call.Name {
	case "COUNT":
		return nil
	case "SUM", "AVG":
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("sql: %s over %T", a.call.Name, v)
		}
		a.sum += n
	case "MIN", "MAX":
		if !a.seen {
			a.min, a.max, a.seen = v, v, true
			return nil
		}
		cmp, err := compare(v, a.min)
		if err != nil {
			return err
		}
		if cmp < 0 {
			a.min = v
		}
		cmp, err = compare(v, a.max)
		if err != nil {
			return err
		}
		if cmp > 0 {
			a.max = v
		}
		return nil
	}
	a.seen = true
	return nil
}

func (a *accumulator) value() any {
	switch a.call.Name {
	case "COUNT":
		return a.count
	case "SUM":
		if a.count == 0 {
			return nil
		}
		return a.sum
	case "AVG":
		if a.count == 0 {
			return nil
		}
		return a.sum / a.count
	case "MIN":
		if !a.seen {
			return nil
		}
		return a.min
	case "MAX":
		if !a.seen {
			return nil
		}
		return a.max
	}
	return nil
}

// aggregate runs hash grouping with COUNT/SUM/MIN/MAX/AVG aggregates and
// applies HAVING over the grouped output.
func (e *Engine) aggregate(stmt *SelectStmt, rel *relation, ev *evaluator) (*Result, error) {
	type group struct {
		keys   []any
		sample []any // first row, for evaluating group-key projections
		accs   []*accumulator
	}
	// Collect the aggregates in projection order.
	var aggs []*FuncCall
	for _, it := range stmt.Items {
		if c, ok := isAggregate(it.Expr); ok {
			if !c.Star && len(c.Args) != 1 {
				return nil, fmt.Errorf("sql: %s wants one argument", c.Name)
			}
			aggs = append(aggs, c)
		}
	}
	newAccs := func() []*accumulator {
		accs := make([]*accumulator, len(aggs))
		for i, c := range aggs {
			accs[i] = &accumulator{call: c}
		}
		return accs
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rel.rows {
		var keyParts []any
		for _, g := range stmt.GroupBy {
			v, err := ev.eval(g, row)
			if err != nil {
				return nil, err
			}
			keyParts = append(keyParts, v)
		}
		key := groupKey(keyParts)
		grp, ok := groups[key]
		if !ok {
			grp = &group{keys: keyParts, sample: row, accs: newAccs()}
			groups[key] = grp
			order = append(order, key)
		}
		for ai, agg := range aggs {
			var v any
			if !agg.Star {
				var err error
				v, err = ev.eval(agg.Args[0], row)
				if err != nil {
					return nil, err
				}
			}
			if err := grp.accs[ai].add(v); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregate without GROUP BY over an empty input still yields
	// one row (zero counts, NULL extremes).
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{accs: newAccs()}
		order = append(order, "")
	}

	res := &Result{}
	for i, it := range stmt.Items {
		res.Cols = append(res.Cols, colAlias(it, fmt.Sprintf("col%d", i+1)))
	}
	for _, key := range order {
		grp := groups[key]
		var out []any
		ai := 0
		for _, it := range stmt.Items {
			if _, ok := isAggregate(it.Expr); ok {
				out = append(out, grp.accs[ai].value())
				ai++
				continue
			}
			if grp.sample == nil {
				out = append(out, nil)
				continue
			}
			v, err := ev.eval(it.Expr, grp.sample)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	if stmt.Having != nil {
		if err := applyHaving(res, stmt.Having); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// applyHaving filters grouped output rows. The predicate references output
// columns (group keys and aggregate aliases), like ORDER BY.
func applyHaving(res *Result, having Expr) error {
	outRel := &relation{}
	for _, c := range res.Cols {
		outRel.cols = append(outRel.cols, colMeta{name: strings.ToLower(c)})
	}
	hev := newEvaluator(outRel)
	kept := res.Rows[:0]
	for _, row := range res.Rows {
		ok, err := hev.evalBool(having, row)
		if err != nil {
			return err
		}
		if ok {
			kept = append(kept, row)
		}
	}
	res.Rows = kept
	return nil
}

// groupKey encodes group-key values unambiguously (typed, quoted strings).
func groupKey(parts []any) string {
	var b strings.Builder
	for _, p := range parts {
		switch v := p.(type) {
		case nil:
			b.WriteString("N;")
		case int64:
			fmt.Fprintf(&b, "i%d;", v)
		case string:
			fmt.Fprintf(&b, "s%q;", v)
		case bool:
			fmt.Fprintf(&b, "b%t;", v)
		default:
			fmt.Fprintf(&b, "?%v;", v)
		}
	}
	return b.String()
}

// colAlias derives the output name of a projection.
func colAlias(it SelectItem, fallback string) string {
	if it.Alias != "" {
		return strings.ToLower(it.Alias)
	}
	if ref, ok := it.Expr.(*ColumnRef); ok {
		return strings.ToLower(ref.Column)
	}
	if c, ok := it.Expr.(*FuncCall); ok {
		return strings.ToLower(c.Name)
	}
	return fallback
}

// orderBy sorts result rows by output columns.
func orderBy(res *Result, items []OrderItem) error {
	type key struct {
		idx  int
		desc bool
	}
	var keys []key
	for _, it := range items {
		ref, ok := it.Expr.(*ColumnRef)
		if !ok {
			return fmt.Errorf("sql: ORDER BY supports output columns only")
		}
		idx := -1
		for i, c := range res.Cols {
			if c == strings.ToLower(ref.Column) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("sql: ORDER BY column %q not in output", ref.Column)
		}
		keys = append(keys, key{idx: idx, desc: it.Desc})
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for _, k := range keys {
			va, vb := res.Rows[a][k.idx], res.Rows[b][k.idx]
			if va == nil || vb == nil {
				if va == vb {
					continue
				}
				return (va == nil) != k.desc // nulls first ascending
			}
			cmp, err := compare(va, vb)
			if err != nil {
				sortErr = err
				return false
			}
			if cmp == 0 {
				continue
			}
			if k.desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return sortErr
}
