package sql

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/mdb"
	"doppiodb/internal/workload"
)

// The golden plan-shape tests pin the operator tree each paper query
// compiles to: operator names, per-operator placement, and plan-cache
// status. Lines(false) renders the pure shape (no row counts), so these
// stay stable across data sizes.

func planLines(t *testing.T, res *Result) []string {
	t.Helper()
	if res.Plan == nil {
		t.Fatal("result has no plan snapshot")
	}
	return res.Plan.Lines(false)
}

func assertPlan(t *testing.T, res *Result, want []string) {
	t.Helper()
	got := planLines(t, res)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan shape:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestPlanGoldenLikeCount(t *testing.T) {
	e, _ := addressEngine(t, 2_000, workload.HitQ1, 0.2)
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%'`)
	if err != nil {
		t.Fatal(err)
	}
	assertPlan(t, res, []string{
		"GroupAggregate: count(*)",
		"  SoftRegexFilter: address_table: (address_string LIKE '%Strasse%') [placement=software cache=miss]",
	})
}

func TestPlanGoldenRegexpSoftware(t *testing.T) {
	// Without an advisor the regex stays on the CPU scan path.
	e, _ := addressEngine(t, 2_000, workload.HitQ2, 0.2)
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`)
	if err != nil {
		t.Fatal(err)
	}
	assertPlan(t, res, []string{
		"GroupAggregate: count(*)",
		`  SoftRegexFilter: address_table: REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})') [placement=software cache=miss]`,
	})
}

func TestPlanGoldenRegexpOffloaded(t *testing.T) {
	// §9 cost-based placement: with the system advising, Q2 offloads and
	// the plan records the placement on the scan leaf.
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(55, 64).Table(20_000, workload.HitQ2, 0.2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s.DB)
	e.Advisor = s
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPath != "regexp->udf" {
		t.Fatalf("fast path = %q", res.FastPath)
	}
	assertPlan(t, res, []string{
		"GroupAggregate: count(*)",
		`  FPGARegexScan: address_table: REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})') [placement=fpga cache=miss]`,
	})
}

func TestPlanGoldenRegexpHybridSplit(t *testing.T) {
	// On the constrained device QH exceeds engine capacity and splits at
	// the top-level `.*`: the plan leaf carries the hybrid placement.
	e, _ := hybridEngine(t)
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '` + workload.QH + `')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision == nil || res.Decision.Chosen != "hybrid" {
		t.Fatalf("decision = %+v, want hybrid", res.Decision)
	}
	lines := planLines(t, res)
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "  FPGARegexScan:") ||
		!strings.Contains(lines[1], "placement=hybrid") {
		t.Errorf("hybrid plan:\n%s", strings.Join(lines, "\n"))
	}
}

func TestPlanGoldenContains(t *testing.T) {
	e, _ := addressEngine(t, 2_000, workload.HitTable1, 0.2)
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE CONTAINS('Alan & Turing & Cheshire')`)
	if err != nil {
		t.Fatal(err)
	}
	assertPlan(t, res, []string{
		"GroupAggregate: count(*)",
		"  IndexLookup: address_table: CONTAINS('Alan & Turing & Cheshire') [placement=software cache=miss]",
	})
}

func TestPlanGoldenRegexpFPGAForced(t *testing.T) {
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(77, 64).Table(5_000, workload.HitQ3, 0.2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s.DB)
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) <> 0`)
	if err != nil {
		t.Fatal(err)
	}
	assertPlan(t, res, []string{
		"GroupAggregate: count(*)",
		`  FPGARegexScan: address_table: (REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) <> 0) [placement=fpga cache=miss]`,
	})
}

func TestPlanGoldenTPCHQ13(t *testing.T) {
	tp := workload.GenerateTPCH(13, 0.01, 0.01)
	e := NewEngine(mdb.New(nil))
	loadTPCH(t, e, tp)
	res, err := e.Query(tpchQ13SQL)
	if err != nil {
		t.Fatal(err)
	}
	assertPlan(t, res, []string{
		"OrderBy: custdist DESC, c_count DESC",
		"  GroupAggregate: group by c_count",
		"    Scan: c_orders (subquery) [placement=software cache=miss]",
		"      GroupAggregate: group by c_custkey",
		"        HashJoin: left outer customer.c_custkey = orders.o_custkey",
		"          Scan: customer [placement=software cache=miss]",
		"          Scan: orders [placement=software cache=miss]",
	})
}

func TestPlanSnapshotRowCounts(t *testing.T) {
	// The executed rendering carries observed per-operator row counts.
	e, hits := addressEngine(t, 2_000, workload.HitQ1, 0.2)
	res, err := e.Query(`SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%'`)
	if err != nil {
		t.Fatal(err)
	}
	lines := res.Plan.Lines(true)
	if !strings.Contains(lines[0], "rows=1") {
		t.Errorf("aggregate row count missing: %s", lines[0])
	}
	if !strings.Contains(lines[1], "rows="+strconv.Itoa(hits)) {
		t.Errorf("scan tally missing (want %d): %s", hits, lines[1])
	}
}
