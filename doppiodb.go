package doppiodb

import (
	"context"

	"doppiodb/internal/config"
	"doppiodb/internal/core"
	"doppiodb/internal/fpga"
	"doppiodb/internal/mdb"
	"doppiodb/internal/sql"
	"doppiodb/internal/token"
)

// This file is the library's public face: a thin, stable facade over the
// internal packages, so downstream users can open a database on the
// simulated hybrid machine, run SQL (including the hardware operator), and
// use the runtime-parameterizable matcher standalone.

// Options configure Open.
type Options struct {
	// Engines and PUsPerEngine select the FPGA deployment (0: the
	// paper's defaults, 4 engines × 16 PUs).
	Engines, PUsPerEngine int
	// MaxStates and MaxChars bound the expressions one configuration
	// vector can carry (0: 16 states / 32 character matchers).
	MaxStates, MaxChars int
	// SharedMemoryBytes sizes the pinned CPU-FPGA region (0: 4 GB, the
	// prototype's limit).
	SharedMemoryBytes uint64
	// CostBasedOffload enables the §9 optimizer: plain REGEXP_LIKE
	// predicates are transparently routed to the FPGA when the cost
	// model predicts a win.
	CostBasedOffload bool
}

// DB is an open doppioDB instance: a column store attached to the simulated
// Xeon+FPGA platform with the REGEXP_FPGA hardware operator registered.
type DB struct {
	sys    *core.System
	engine *sql.Engine
}

// Open boots the platform (programs the FPGA deployment, maps the shared
// region, starts the HAL) and returns a ready database.
func Open(opts Options) (*DB, error) {
	dep := fpga.DefaultDeployment()
	if opts.Engines > 0 {
		dep.Engines = opts.Engines
	}
	if opts.PUsPerEngine > 0 {
		dep.PUsPerEngine = opts.PUsPerEngine
	}
	if opts.MaxStates > 0 {
		dep.Limits.MaxStates = opts.MaxStates
	}
	if opts.MaxChars > 0 {
		dep.Limits.MaxChars = opts.MaxChars
	}
	sys, err := core.NewSystem(core.Options{
		Deployment:  &dep,
		RegionBytes: opts.SharedMemoryBytes,
	})
	if err != nil {
		return nil, err
	}
	engine := sql.NewEngine(sys.DB)
	if opts.CostBasedOffload {
		engine.Advisor = sys
	}
	return &DB{sys: sys, engine: engine}, nil
}

// Result is a query result. Values are int64, string, or nil.
type Result struct {
	Columns []string
	Rows    [][]any
	// Offloaded reports that the query (or part of it) ran on the
	// FPGA's regex engines; HWSeconds is the simulated hardware time.
	Offloaded bool
	HWSeconds float64
}

// Query executes one SELECT statement. The dialect covers the paper's
// workloads: predicates LIKE / ILIKE / REGEXP_LIKE / CONTAINS /
// REGEXP_FPGA, joins (inner and left outer), GROUP BY with
// COUNT/SUM/MIN/MAX/AVG, HAVING, ORDER BY, LIMIT, and derived tables.
func (db *DB) Query(statement string) (*Result, error) {
	return db.QueryContext(context.Background(), statement)
}

// QueryContext executes one SELECT statement under ctx. Canceling ctx
// aborts the query's FPGA jobs while they are still waiting for admission
// (granted jobs run their arbitration round to completion) and stops the
// software fallback between row chunks.
func (db *DB) QueryContext(ctx context.Context, statement string) (*Result, error) {
	res, err := db.engine.QueryContext(ctx, statement)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: res.Cols, Rows: res.Rows}
	if res.UDF != nil {
		out.Offloaded = true
		out.HWSeconds = res.UDF.HWSeconds
	}
	return out, nil
}

// Close shuts down the device runtime. Queued-but-not-granted jobs are
// canceled; in-flight rounds complete. Queries issued after Close fail.
func (db *DB) Close() { db.sys.Close() }

// Session is an independent SQL execution context over a shared DB. Each
// session holds its own parser/planner state while all sessions share the
// column store and the one simulated FPGA, whose device runtime arbitrates
// their jobs round-robin — this is how the paper's multi-client throughput
// experiments (Figs. 8 and 11) are driven. Sessions are cheap; create one
// per client goroutine. A Session must not be used concurrently from
// multiple goroutines, but any number of Sessions may run concurrently.
type Session struct {
	engine *sql.Engine
}

// NewSession returns a new independent session on the database.
func (db *DB) NewSession() *Session {
	engine := sql.NewEngine(db.sys.DB)
	engine.Advisor = db.engine.Advisor
	return &Session{engine: engine}
}

// Query executes one SELECT on this session.
func (s *Session) Query(statement string) (*Result, error) {
	return s.QueryContext(context.Background(), statement)
}

// QueryContext executes one SELECT on this session under ctx.
func (s *Session) QueryContext(ctx context.Context, statement string) (*Result, error) {
	res, err := s.engine.QueryContext(ctx, statement)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: res.Cols, Rows: res.Rows}
	if res.UDF != nil {
		out.Offloaded = true
		out.HWSeconds = res.UDF.HWSeconds
	}
	return out, nil
}

// ColumnType declares a column for CreateTable.
type ColumnType int

// Column types.
const (
	Int ColumnType = iota
	String
)

// Column pairs a name with a type.
type Column struct {
	Name string
	Type ColumnType
}

// CreateTable creates an empty table whose BATs live in the CPU-FPGA
// shared region.
func (db *DB) CreateTable(name string, cols ...Column) error {
	specs := make([]mdb.ColSpec, len(cols))
	for i, c := range cols {
		k := mdb.KindInt
		if c.Type == String {
			k = mdb.KindString
		}
		specs[i] = mdb.ColSpec{Name: c.Name, Kind: k}
	}
	_, err := db.sys.DB.CreateTable(name, specs...)
	return err
}

// Insert appends one row to a table. Values must match the column types
// (int/int32 for Int, string for String).
func (db *DB) Insert(table string, values ...any) error {
	tbl, err := db.sys.DB.Table(table)
	if err != nil {
		return err
	}
	return tbl.AppendRow(values...)
}

// LoadStringTable bulk-creates the two-column (id INT, <col> VARCHAR)
// layout the paper's address table uses.
func (db *DB) LoadStringTable(table string, rows []string) error {
	_, err := db.sys.DB.LoadAddressTable(table, rows)
	return err
}

// Device returns a one-line description of the programmed FPGA (engines,
// PUs, expression capacity, resource usage).
func (db *DB) Device() string { return db.sys.Device.String() }

// EstimateOffload exposes the §9 cost function: predicted hardware and
// software response times for evaluating pattern over rows strings of
// avgLen bytes, and which placement the optimizer would choose ("fpga",
// "hybrid", or "software").
func (db *DB) EstimateOffload(pattern string, rows, avgLen int) (placement string, hwSeconds, swSeconds float64, err error) {
	est, err := db.sys.EstimateCost(pattern, rows, avgLen, db.sys.QueuedBytes())
	if err != nil {
		return "", 0, 0, err
	}
	return est.Placement.String(), est.HWTime.Seconds(), est.SWTime.Seconds(), nil
}

// Matcher is a standalone runtime-parameterizable matcher: the same
// token-NFA a Processing Unit executes, usable without a database around
// it.
type Matcher struct {
	prog *token.Program
	// States and Chars are the expression's demand on the deployed
	// circuit (one state per token plus the end state; a range costs
	// two coupled character matchers).
	States, Chars int
	// FitsDefaultDevice reports whether the expression maps onto the
	// default 16-state / 32-character deployment.
	FitsDefaultDevice bool
}

// CompilePattern compiles a pattern of the paper's dialect (literals,
// classes, ranges, `.`, `* + ? {m,n}`, alternation, grouping, `^ $`) into
// a matcher. foldCase selects the case-insensitive collation.
func CompilePattern(pattern string, foldCase bool) (*Matcher, error) {
	prog, err := token.CompilePattern(pattern, token.Options{FoldCase: foldCase})
	if err != nil {
		return nil, err
	}
	return &Matcher{
		prog:              prog,
		States:            prog.NumStates(),
		Chars:             prog.NumChars(),
		FitsDefaultDevice: config.Fits(prog, config.DefaultLimits) == nil,
	}, nil
}

// Match returns the HUDF result encoding for s: 0 for no match, else the
// 1-based position of the first match's last character.
func (m *Matcher) Match(s string) int { return m.prog.MatchString(s) }

// Matches reports whether s matches.
func (m *Matcher) Matches(s string) bool { return m.prog.MatchString(s) != 0 }
