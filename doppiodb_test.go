package doppiodb_test

import (
	"context"
	"sync"
	"testing"

	"doppiodb"
	"doppiodb/internal/workload"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	db, err := doppiodb.Open(doppiodb.Options{SharedMemoryBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(1, 64).Table(20_000, workload.HitQ2, 0.2)
	if err := db.LoadStringTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT count(*) FROM address_table
		WHERE REGEXP_FPGA('(Strasse|Str\.).*(8[0-9]{4})', address_string) <> 0`)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Rows[0][0].(int64)) != hits {
		t.Errorf("count = %v, want %d", res.Rows[0][0], hits)
	}
	if !res.Offloaded || res.HWSeconds <= 0 {
		t.Errorf("offload accounting missing: %+v", res)
	}
	if db.Device() == "" {
		t.Error("empty device description")
	}
}

func TestPublicAPIConcurrentSessions(t *testing.T) {
	db, err := doppiodb.Open(doppiodb.Options{SharedMemoryBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows, hits := workload.NewGenerator(3, 64).Table(10_000, workload.HitQ2, 0.2)
	if err := db.LoadStringTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT count(*) FROM address_table
		WHERE REGEXP_FPGA('(Strasse|Str\.).*(8[0-9]{4})', address_string) <> 0`
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := db.NewSession()
			for i := 0; i < 4; i++ {
				res, err := sess.QueryContext(context.Background(), q)
				if err != nil {
					t.Errorf("session %d query %d: %v", c, i, err)
					return
				}
				if int(res.Rows[0][0].(int64)) != hits {
					t.Errorf("session %d query %d: count = %v, want %d",
						c, i, res.Rows[0][0], hits)
					return
				}
				if !res.Offloaded || res.HWSeconds <= 0 {
					t.Errorf("session %d query %d: offload accounting missing: %+v",
						c, i, res)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestPublicAPICreateInsertQuery(t *testing.T) {
	db, err := doppiodb.Open(doppiodb.Options{SharedMemoryBytes: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("orders",
		doppiodb.Column{Name: "id", Type: doppiodb.Int},
		doppiodb.Column{Name: "note", Type: doppiodb.String}); err != nil {
		t.Fatal(err)
	}
	notes := []string{"urgent delivery", "standard", "express delivery", "hold"}
	for i, n := range notes {
		if err := db.Insert("orders", i, n); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT id FROM orders WHERE note LIKE '%delivery%' ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].(int64) != 0 || res.Rows[1][0].(int64) != 2 {
		t.Errorf("rows: %v", res.Rows)
	}
	if err := db.Insert("missing", 1); err == nil {
		t.Error("insert into missing table accepted")
	}
}

func TestPublicAPICostBasedOffload(t *testing.T) {
	db, err := doppiodb.Open(doppiodb.Options{
		SharedMemoryBytes: 1 << 30,
		CostBasedOffload:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(2, 64).Table(20_000, workload.HitQ3, 0.2)
	if err := db.LoadStringTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT count(*) FROM address_table
		WHERE REGEXP_LIKE(address_string, '[0-9]+(USD|EUR|GBP)')`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded {
		t.Error("cost-based offload did not engage for a complex scan")
	}
	placement, hw, sw, err := db.EstimateOffload(workload.Q2, 2_500_000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if placement != "fpga" || hw <= 0 || sw <= hw {
		t.Errorf("estimate: %s hw=%g sw=%g", placement, hw, sw)
	}
}

func TestPublicMatcher(t *testing.T) {
	m, err := doppiodb.CompilePattern(`(Strasse|Str\.).*(8[0-9]{4})`, false)
	if err != nil {
		t.Fatal(err)
	}
	if !m.FitsDefaultDevice || m.States != 4 || m.Chars != 20 {
		t.Errorf("matcher metadata: %+v", m)
	}
	if got := m.Match("Haupt Strasse 81000"); got != 19 {
		t.Errorf("Match = %d, want 19", got)
	}
	if m.Matches("Lindenweg 50000") {
		t.Error("false positive")
	}
	folded, err := doppiodb.CompilePattern(`strasse`, true)
	if err != nil {
		t.Fatal(err)
	}
	if !folded.Matches("KOBLENZER STRASSE") {
		t.Error("collation matcher failed")
	}
	if _, err := doppiodb.CompilePattern(`(`, false); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestPublicAPIBadDeployment(t *testing.T) {
	if _, err := doppiodb.Open(doppiodb.Options{Engines: 5}); err == nil {
		t.Error("5-engine deployment should fail routing")
	}
}
