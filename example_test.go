package doppiodb_test

import (
	"fmt"
	"log"

	"doppiodb"
)

// ExampleOpen boots the simulated hybrid machine, loads a few rows, and
// runs the hardware regex operator through SQL.
func ExampleOpen() {
	db, err := doppiodb.Open(doppiodb.Options{SharedMemoryBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	rows := []string{
		"John|Smith|44 Koblenzer Strasse|80327|Frankfurt",
		"Anna|Miller|9 Lindenweg|60331|Muenchen",
		"Hans|Maier|3 Str. 81000|Zuerich",
	}
	if err := db.LoadStringTable("address_table", rows); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT count(*) FROM address_table
		WHERE REGEXP_FPGA('(Strasse|Str\.).*(8[0-9]{4})', address_string) <> 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", res.Rows[0][0], "offloaded:", res.Offloaded)
	// Output: matches: 2 offloaded: true
}

// ExampleCompilePattern uses the runtime-parameterizable matcher standalone
// — the same automaton a Processing Unit executes.
func ExampleCompilePattern() {
	m, err := doppiodb.CompilePattern(`[0-9]+(USD|EUR|GBP)`, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Match("invoice 250EUR due")) // position of the match's last character
	fmt.Println(m.Match("invoice EUR due"))    // 0: no match
	fmt.Println(m.States, m.Chars, m.FitsDefaultDevice)
	// Output:
	// 14
	// 0
	// 5 11 true
}

// ExampleDB_EstimateOffload shows the §9 cost function the query optimizer
// uses to place an operator.
func ExampleDB_EstimateOffload() {
	db, err := doppiodb.Open(doppiodb.Options{SharedMemoryBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	placement, _, _, err := db.EstimateOffload(`(Strasse|Str\.).*(8[0-9]{4})`, 2_500_000, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(placement)
	// Output: fpga
}
