module doppiodb

go 1.22
