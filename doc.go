// Package doppiodb is a from-scratch Go reproduction of "Accelerating
// Pattern Matching Queries in Hybrid CPU-FPGA Architectures" (Sidler,
// István, Owaida, Alonso — SIGMOD 2017): MonetDB extended with a Hardware
// User Defined Function that offloads LIKE and REGEXP_LIKE predicates to
// runtime-parameterizable regex engines on the FPGA of an Intel Xeon+FPGA
// machine.
//
// The physical platform is simulated (see DESIGN.md for the substitution
// inventory); everything else — the token-NFA compiler, the configuration
// vector format, the Processing Unit semantics, the HAL, the column store,
// the software baselines, the SQL front end, and the full evaluation
// harness — is implemented and tested in the internal packages. Entry
// points:
//
//   - internal/core: the assembled system (NewSystem) and the HUDF.
//   - internal/sql: SQL over the column store, including REGEXP_FPGA.
//   - cmd/doppiobench: regenerates every table and figure of the paper.
//   - examples/: five runnable scenarios, starting with quickstart.
//
// The top-level benchmarks in bench_test.go regenerate each experiment
// under `go test -bench`.
package doppiodb
