// Top-level benchmarks: one per table and figure of the paper's evaluation
// (each bench regenerates the experiment end to end), plus real-execution
// microbenchmarks of the core operators so regressions in the Go
// implementations are visible independently of the calibrated model.
package doppiodb_test

import (
	"context"
	"fmt"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/experiments"
	"doppiodb/internal/mdb"
	"doppiodb/internal/pu"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

func benchCfg() experiments.Config {
	return experiments.Config{SampleRows: 10_000, Seed: 1, Selectivity: 0.2}
}

// BenchmarkTable1 regenerates Table 1 (CONTAINS vs LIKE vs REGEXP_LIKE).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (engine scaling).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9 (response time vs size/complexity).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10 (response-time breakdown).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11 (throughput vs clients).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12 (TPC-H Q13, LIKE vs ILIKE).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13 regenerates Figure 13 (hybrid execution).
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14 regenerates Figures 14a/b/c (resource scaling).
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure14a(benchCfg()); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure14b(benchCfg()); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure14c(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure15 regenerates Figure 15 (frequency/complexity trade-off).
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure15(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-execution microbenchmarks -------------------------------------

// benchTable loads the address workload once per configuration.
func benchTable(b *testing.B, n int, kind workload.HitKind) (*mdb.DB, *mdb.Table) {
	b.Helper()
	db := mdb.New(nil)
	rows, _ := workload.NewGenerator(1, 64).Table(n, kind, 0.2)
	tbl, err := db.LoadAddressTable("address_table", rows)
	if err != nil {
		b.Fatal(err)
	}
	return db, tbl
}

// BenchmarkScanLikeQ1 measures the real Go LIKE scan (Boyer-Moore) rate.
func BenchmarkScanLikeQ1(b *testing.B) {
	db, tbl := benchTable(b, 50_000, workload.HitQ1)
	b.SetBytes(int64(50_000 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SelectLike(tbl, "address_string", workload.Q1Like, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanRegexp measures the real backtracking regex scan for each
// evaluation query.
func BenchmarkScanRegexp(b *testing.B) {
	for _, q := range []struct {
		name, pat string
		kind      workload.HitKind
	}{
		{"Q2", workload.Q2, workload.HitQ2},
		{"Q3", workload.Q3, workload.HitQ3},
		{"Q4", workload.Q4, workload.HitQ4},
	} {
		b.Run(q.name, func(b *testing.B) {
			db, tbl := benchTable(b, 20_000, q.kind)
			b.SetBytes(int64(20_000 * 64))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.SelectRegexp(tbl, "address_string", q.pat, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHUDF measures the full hardware-UDF path (functional execution
// of the PU model plus the timing simulation).
func BenchmarkHUDF(b *testing.B) {
	sys, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	rows, _ := workload.NewGenerator(1, 64).Table(50_000, workload.HitQ2, 0.2)
	tbl, err := sys.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		b.Fatal(err)
	}
	col, _ := tbl.Column("address_string")
	b.SetBytes(int64(50_000 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Exec(context.Background(), col.Strs, workload.Q2, token.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPUThroughput measures the bit-parallel PU model's byte rate for
// increasing pattern complexity: the software model slows with state
// count, the property the real hardware does NOT have — which is exactly
// why the timing model is analytic.
func BenchmarkPUThroughput(b *testing.B) {
	for _, states := range []int{2, 4, 8} {
		pat := ""
		for i := 0; i < states-1; i++ {
			if i > 0 {
				pat += ".*"
			}
			pat += fmt.Sprintf("(t%c|u%c)", 'a'+i, 'a'+i)
		}
		if states == 2 {
			pat = "token"
		}
		prog, err := token.CompilePattern(pat, token.Options{})
		if err != nil {
			b.Fatal(err)
		}
		u, err := pu.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		in := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
		b.Run(fmt.Sprintf("states=%d", prog.NumStates()), func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			for i := 0; i < b.N; i++ {
				u.Match(in)
			}
		})
	}
}

// BenchmarkAblations regenerates the design-choice ablations (gap-hold
// compiler shortcut, arbiter batch size, engine partitioning).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGapHold(benchCfg()); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationArbiter(benchCfg()); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.AblationEngineConfig(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
