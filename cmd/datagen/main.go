// Command datagen writes the evaluation datasets to disk as TSV: the
// address table of §7.1.1 (id \t address_string) or the TPC-H Q13 subset
// (customer.tsv, orders.tsv).
//
// Usage:
//
//	datagen -kind address -rows 2500000 -selectivity 0.2 -hit q2 -out addresses.tsv
//	datagen -kind tpch -sf 0.1 -outdir tpch/
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"doppiodb/internal/workload"
)

func main() {
	var (
		kind   = flag.String("kind", "address", "dataset: address or tpch")
		rows   = flag.Int("rows", 100_000, "address rows")
		sel    = flag.Float64("selectivity", 0.2, "hit selectivity")
		hit    = flag.String("hit", "q2", "hit kind: q1 q2 q3 q4 qh table1")
		strLen = flag.Int("strlen", workload.DefaultStrLen, "address string length")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "addresses.tsv", "output file (address)")
		sf     = flag.Float64("sf", 0.1, "TPC-H scale factor")
		outdir = flag.String("outdir", ".", "output directory (tpch)")
	)
	flag.Parse()

	switch *kind {
	case "address":
		kinds := map[string]workload.HitKind{
			"q1": workload.HitQ1, "q2": workload.HitQ2, "q3": workload.HitQ3,
			"q4": workload.HitQ4, "qh": workload.HitQH, "table1": workload.HitTable1,
			"none": workload.HitNone,
		}
		hk, ok := kinds[*hit]
		if !ok {
			fatal(fmt.Errorf("unknown hit kind %q", *hit))
		}
		g := workload.NewGenerator(*seed, *strLen)
		data, hits := g.Table(*rows, hk, *sel)
		f, err := os.Create(*out)
		fatal(err)
		w := bufio.NewWriter(f)
		for i, r := range data {
			fmt.Fprintln(w, workload.FormatRow(i, r))
		}
		fatal(w.Flush())
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %d rows (%d hits, selectivity %.3f) to %s\n",
			len(data), hits, float64(hits)/float64(len(data)), *out)
	case "tpch":
		tp := workload.GenerateTPCH(*seed, *sf, 0.01)
		cf, err := os.Create(filepath.Join(*outdir, "customer.tsv"))
		fatal(err)
		cw := bufio.NewWriter(cf)
		for _, c := range tp.Customers {
			fmt.Fprintf(cw, "%d\n", c.CustKey)
		}
		fatal(cw.Flush())
		fatal(cf.Close())
		of, err := os.Create(filepath.Join(*outdir, "orders.tsv"))
		fatal(err)
		ow := bufio.NewWriter(of)
		for _, o := range tp.Orders {
			fmt.Fprintf(ow, "%d\t%d\t%s\n", o.OrderKey, o.CustKey, o.Comment)
		}
		fatal(ow.Flush())
		fatal(of.Close())
		fmt.Fprintf(os.Stderr, "wrote %d customers, %d orders (SF %.2f) to %s\n",
			len(tp.Customers), len(tp.Orders), *sf, *outdir)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
