// Command regexfpga runs one pattern over strings on the simulated FPGA's
// regex engines and reports matches, the configuration-vector footprint,
// and the simulated hardware time — a direct line to the paper's HUDF
// without a database around it.
//
// Usage:
//
//	regexfpga -pattern '(Strasse|Str\.).*(8[0-9]{4})' [-i] [-file data.txt]
//	regexfpga -pattern 'error.*timeout' < app.log
//	regexfpga -pattern 'Strasse' -gen 100000 -selectivity 0.2
//
// Input is one string per line (stdin or -file), or -gen N synthesizes the
// paper's address workload.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"doppiodb/internal/config"
	"doppiodb/internal/core"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/token"
	"doppiodb/internal/topdown"
	"doppiodb/internal/workload"
)

func main() {
	var (
		pattern  = flag.String("pattern", "", "regular expression (required)")
		fold     = flag.Bool("i", false, "case-insensitive (collation registers)")
		file     = flag.String("file", "", "input file (default stdin)")
		gen      = flag.Int("gen", 0, "generate N address rows instead of reading input")
		sel      = flag.Float64("selectivity", 0.2, "hit selectivity with -gen")
		quiet    = flag.Bool("quiet", false, "suppress per-line output")
		trace    = flag.Bool("trace", false, "print the query-lifecycle span tree")
		traceOut = flag.String("trace-out", "", "write the flight-recorder timeline (plus the query span tree) as Chrome-trace JSON to this file")
		explainF = flag.Bool("explain", false, "print the placement decision record with predicted-vs-actual cost per term")
		explOut  = flag.String("explain-out", "", "write the decision record as JSON to this file")
		tdF      = flag.Bool("topdown", false, "print the query's bottleneck verdict and the fabric utilization table")
		tdOut    = flag.String("topdown-out", "", "write the attribution and fabric report as JSON to this file")
	)
	flag.Parse()
	if *pattern == "" {
		fmt.Fprintln(os.Stderr, "regexfpga: -pattern is required")
		flag.Usage()
		os.Exit(2)
	}

	// Compile first so capacity problems are reported before any I/O.
	prog, err := token.CompilePattern(*pattern, token.Options{FoldCase: *fold})
	fatal(err)
	vec, encErr := config.Encode(prog, config.DefaultLimits)

	s, err := core.NewSystem(core.Options{RegionBytes: 2 << 30})
	fatal(err)

	var rows []string
	switch {
	case *gen > 0:
		g := workload.NewGenerator(1, workload.DefaultStrLen)
		rows, _ = g.Table(*gen, workload.HitQ2, *sel)
	default:
		in := os.Stdin
		if *file != "" {
			f, err := os.Open(*file)
			fatal(err)
			defer f.Close()
			in = f
		}
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			rows = append(rows, sc.Text())
		}
		fatal(sc.Err())
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "regexfpga: no input")
		os.Exit(1)
	}

	tbl, err := s.DB.LoadAddressTable("input", rows)
	fatal(err)
	col, err := tbl.Column("address_string")
	fatal(err)

	res, err := s.Exec(context.Background(), col.Strs, *pattern, token.Options{FoldCase: *fold})
	fatal(err)

	if !*quiet {
		for i := 0; i < res.Matches.Count(); i++ {
			if pos := res.Matches.Get(i); pos != 0 {
				fmt.Printf("%d:%d:%s\n", i, pos, rows[i])
			}
		}
	}
	fmt.Fprintf(os.Stderr, "pattern: %q (%d states, %d character matchers)\n",
		*pattern, prog.NumStates(), prog.NumChars())
	if encErr == nil {
		fmt.Fprintf(os.Stderr, "config vector: %d x 512-bit words\n", config.Words(vec))
	} else {
		fmt.Fprintf(os.Stderr, "direct offload not possible (%v)\n", encErr)
	}
	if res.Hybrid {
		fmt.Fprintf(os.Stderr, "hybrid execution: FPGA %q + CPU %q\n", res.HWPart, res.SWPart)
	}
	fmt.Fprintf(os.Stderr, "%d/%d rows matched; simulated response %v (hardware %v)\n",
		res.MatchCount, len(rows), res.Total(),
		res.Breakdown.Get(core.PhaseHardware))
	fmt.Fprintf(os.Stderr, "device: %s\n", s.Device)
	if *trace && res.Trace != nil {
		fmt.Fprintln(os.Stderr, "trace:")
		res.Trace.WriteTree(os.Stderr)
	}
	if *explainF {
		if res.Decision == nil {
			fmt.Fprintln(os.Stderr, "explain: no decision record (cost estimation failed)")
		} else {
			fmt.Fprintln(os.Stderr, "explain:")
			res.Decision.WriteText(os.Stderr)
		}
	}
	if *tdF {
		if res.Topdown != nil {
			fmt.Fprintln(os.Stderr, res.Topdown.Line())
		}
		s.HAL.Topdown().WriteText(os.Stderr)
	}
	if *tdOut != "" {
		doc := struct {
			Attribution *topdown.Attribution `json:"attribution,omitempty"`
			Fabric      topdown.FabricReport `json:"fabric"`
			Conserved   bool                 `json:"conserved"`
		}{Attribution: res.Topdown, Fabric: s.HAL.Topdown()}
		doc.Conserved = doc.Fabric.Conserved()
		f, err := os.Create(*tdOut)
		fatal(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(doc)
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		fatal(err)
		fmt.Fprintf(os.Stderr, "topdown report written to %s\n", *tdOut)
	}
	if *explOut != "" && res.Decision != nil {
		f, err := os.Create(*explOut)
		fatal(err)
		err = res.Decision.WriteJSON(f)
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		fatal(err)
		fmt.Fprintf(os.Stderr, "decision record written to %s\n", *explOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		err = flightrec.WriteChromeTrace(f, s.Rec.Window(), res.Trace)
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		fatal(err)
		fmt.Fprintf(os.Stderr, "timeline written to %s (%d events; open in ui.perfetto.dev)\n",
			*traceOut, s.Rec.Len())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "regexfpga: %v\n", err)
		os.Exit(1)
	}
}
