// Command doppiobench regenerates every table and figure of the paper's
// evaluation and prints them next to the published values.
//
// Usage:
//
//	doppiobench [-experiment all|none|table1|fig8|...|fig15|throughput|soak]
//	            [-sample N] [-seed S] [-selectivity F]
//	            [-clients N] [-measured-rows N]
//	            [-json] [-metrics-out FILE.json] [-trace-out FILE.json]
//	            [-explain] [-explain-out FILE.json]
//	            [-baseline FILE.json] [-baseline-against FILE.json]
//	            [-baseline-tol PCT] [-baseline-report FILE.json]
//	            [-querylog-out FILE.jsonl]
//	            [-topdown] [-topdown-out FILE.json]
//	            [-mon ADDR] [-faults SPEC]
//
// -sample sets how many rows the functional engines execute per
// measurement (work is extrapolated to the paper's row counts); larger
// samples tighten the work estimates at the cost of runtime. -clients and
// -measured-rows size the measured concurrent-throughput runs (Figures 8
// and 11 and the dedicated `throughput` sweep): N client goroutines issue
// live queries through the asynchronous device runtime and the achieved
// rate is read off the simulated device timeline. -json replaces
// the text tables with one machine-readable JSON document holding every
// experiment result plus the final telemetry snapshot; -metrics-out
// additionally writes the telemetry registry (counters, gauges, histograms
// accumulated across every simulated system the run booted) to a file.
//
// -faults injects hardware faults into every simulated system the run
// boots (spec grammar in internal/faults: stuck-done=P, config-corrupt=P,
// status-corrupt=P, handshake-loss=P, qpi=F, engine-drop=E[@AFTER][+RECOVER],
// seed=N). Queries retried or degraded by the robustness layer show up in
// the hal.faults.* / core.fallback.* counters of the telemetry snapshot and
// in the health section of the -json / -metrics-out documents.
//
// Observability: -trace-out FILE writes the flight recorder's window as a
// Chrome-trace JSON timeline (open in ui.perfetto.dev); -mon ADDR serves
// /metrics, /health, /trace, /calibration and /debug/pprof while the run is
// in progress; SIGQUIT dumps the flight-recorder window to stderr without
// stopping the run. Every query the experiments issue feeds the cost-model
// calibration auditor: -explain prints the per-term prediction-error report
// after the run, -explain-out writes it (plus the most recent decision
// records) as JSON, and the -json document carries it in "calibration".
//
// Perf-regression gate: -baseline FILE compares this run's results (or,
// with -baseline-against FILE, a previously written -json document — use
// -experiment none to compare two files without running anything) against
// a baseline -json document and exits 3 when a throughput-class metric
// dropped more than -baseline-tol percent (default 10). -baseline-report
// writes the delta report as JSON for CI to validate. Every query also
// lands in the wide-event query log: -querylog-out exports the retained
// window as JSON Lines, and the -json document carries the log stats in
// "querylog", the windowed SLO report in "slo", and the binary's build
// identity in "build".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"doppiodb/internal/doppiomon"
	"doppiodb/internal/experiments"
	"doppiodb/internal/explain"
	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/hal"
	"doppiodb/internal/obs"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/topdown"
)

// namedResult pairs an experiment result with its type-derived name for the
// -json document.
type namedResult struct {
	Experiment string `json:"experiment"`
	Result     any    `json:"result"`
}

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment to run (all, table1, fig8..fig15)")
		sampl    = flag.Int("sample", experiments.DefaultSampleRows, "functional sample rows")
		seed     = flag.Int64("seed", 1, "workload seed")
		sel      = flag.Float64("selectivity", experiments.DefaultSelectivity, "hit selectivity")
		clients  = flag.Int("clients", experiments.DefaultClients, "concurrent client goroutines for the measured throughput runs")
		mrows    = flag.Int("measured-rows", experiments.DefaultMeasuredRows, "per-query rows of the measured throughput runs")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
		metOut   = flag.String("metrics-out", "", "write the telemetry snapshot to this JSON file")
		explainF = flag.Bool("explain", false, "print the cost-model calibration report after the run")
		explOut  = flag.String("explain-out", "", "write the calibration report and recent decision records to this JSON file")
		traceOut = flag.String("trace-out", "", "write the flight-recorder timeline as Chrome-trace JSON to this file")
		monAddr  = flag.String("mon", "", "serve the live monitoring endpoint on this address (e.g. 127.0.0.1:9137)")
		fspec    = flag.String("faults", "", "hardware fault injection spec, e.g. 'stuck-done=0.2,engine-drop=1@8+3,qpi=0.5,seed=42'")
		baseFile = flag.String("baseline", "", "baseline -json document; exit 3 if a throughput-class metric regressed past the tolerance")
		baseCur  = flag.String("baseline-against", "", "compare this previously written -json document instead of the current run's results")
		baseTol  = flag.Float64("baseline-tol", 10, "regression tolerance for -baseline, in percent")
		baseRep  = flag.String("baseline-report", "", "write the -baseline delta report to this JSON file")
		qlogOut  = flag.String("querylog-out", "", "write the retained wide-event query log as JSON Lines to this file")
		tdF      = flag.Bool("topdown", false, "print the cumulative topdown utilization summary after the run")
		tdOut    = flag.String("topdown-out", "", "write the topdown utilization summary to this JSON file")
		planF    = flag.Bool("plan", false, "print the executed physical-operator plan of every paper query, then exit")
	)
	flag.Parse()
	cfg := experiments.Config{SampleRows: *sampl, Seed: *seed, Selectivity: *sel,
		Clients: *clients, MeasuredRows: *mrows}
	jsonMode = *jsonOut
	if *planF {
		if err := printPlans(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: -plan: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fspec != "" {
		in, err := faults.NewFromSpec(*fspec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: %v\n", err)
			os.Exit(2)
		}
		faults.SetDefault(in)
		fmt.Fprintf(os.Stderr, "doppiobench: fault injection active: %s\n", *fspec)
	}
	// Degrade dumps and SIGQUIT forensics go to stderr; the experiments all
	// record into the process-wide default recorder.
	rec := flightrec.Default()
	rec.SetSink(os.Stderr)
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			fmt.Fprintln(os.Stderr, "doppiobench: SIGQUIT: flight-recorder window follows")
			rec.WriteText(os.Stderr)
		}
	}()
	if *monAddr != "" {
		mon, err := doppiomon.Start(*monAddr, doppiomon.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: %v\n", err)
			os.Exit(2)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "doppiobench: monitoring endpoint on http://%s\n", mon.Addr())
	}

	type exp struct {
		name string
		run  func() error
	}
	out := os.Stdout
	all := []exp{
		// "none" runs nothing: it lets -baseline compare two previously
		// written -json documents without paying for a run.
		{"none", func() error { return nil }},
		{"table1", func() error { r, err := experiments.Table1(cfg); render(r, err, out); return err }},
		{"fig8", func() error { r, err := experiments.Figure8(cfg); render(r, err, out); return err }},
		{"fig9", func() error { r, err := experiments.Figure9(cfg); render(r, err, out); return err }},
		{"fig10", func() error { r, err := experiments.Figure10(cfg); render(r, err, out); return err }},
		{"fig11", func() error { r, err := experiments.Figure11(cfg); render(r, err, out); return err }},
		{"fig12", func() error { r, err := experiments.Figure12(cfg); render(r, err, out); return err }},
		{"fig13", func() error { r, err := experiments.Figure13(cfg); render(r, err, out); return err }},
		{"fig14", func() error {
			a, err := experiments.Figure14a(cfg)
			render(a, err, out)
			if err != nil {
				return err
			}
			b, err := experiments.Figure14b(cfg)
			render(b, err, out)
			if err != nil {
				return err
			}
			c, err := experiments.Figure14c(cfg)
			render(c, err, out)
			return err
		}},
		{"fig15", func() error { r, err := experiments.Figure15(cfg); render(r, err, out); return err }},
		{"throughput", func() error { r, err := experiments.Throughput(cfg); render(r, err, out); return err }},
		{"repeat", func() error { r, err := experiments.Repeat(cfg); render(r, err, out); return err }},
		{"soak", func() error { r, err := experiments.Soak(cfg); render(r, err, out); return err }},
		{"platform", func() error { r, err := experiments.Platform(cfg); render(r, err, out); return err }},
		{"nextgen", func() error { r, err := experiments.NextGen(cfg); render(r, err, out); return err }},
		{"topdown", func() error { r, err := experiments.Topdown(cfg); render(r, err, out); return err }},
		{"ablations", func() error {
			if r, err := experiments.AblationGapHold(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationArbiter(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationEngineConfig(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationSoftEngines(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationSubstring(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			r, err := experiments.AblationPrescan(cfg)
			render(r, err, out)
			return err
		}},
	}

	ran := false
	for _, e := range all {
		if *which != "all" && !strings.EqualFold(*which, e.name) {
			continue
		}
		ran = true
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if !jsonMode {
			fmt.Fprintln(out)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "doppiobench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
	snap := telemetry.Default().Snapshot()
	health := hal.SummaryFromMetrics(snap)
	calib := explain.Default().Stats()
	doc := struct {
		Experiments []namedResult       `json:"experiments"`
		Build       telemetry.BuildInfo `json:"build"`
		Metrics     telemetry.Snapshot  `json:"metrics"`
		Health      hal.HealthCounters  `json:"health"`
		Calibration explain.Report      `json:"calibration"`
		SLO         obs.SLOReport       `json:"slo"`
		QueryLog    obs.LogStats        `json:"querylog"`
		Topdown     topdown.Summary     `json:"topdown"`
	}{results, telemetry.Build(), snap, health, calib,
		obs.Default().SLO.Report(), obs.Default().Log.Stats(),
		topdown.SummaryFromMetrics(snap)}
	if doc.Experiments == nil {
		doc.Experiments = []namedResult{}
	}
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: encode results: %v\n", err)
			os.Exit(1)
		}
	}
	if *metOut != "" {
		// The snapshot document plus a health section; ParseSnapshot ignores
		// unknown keys, so existing consumers keep working.
		doc := struct {
			telemetry.Snapshot
			Health hal.HealthCounters `json:"health"`
		}{snap, health}
		if err := writeJSONFile(*metOut, doc); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: write metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "doppiobench: telemetry snapshot written to %s\n", *metOut)
	}
	if *explainF {
		fmt.Fprintln(os.Stderr, "doppiobench: cost-model calibration report:")
		calib.WriteText(os.Stderr)
	}
	if *tdF {
		fmt.Fprintln(os.Stderr, "doppiobench: topdown utilization summary:")
		doc.Topdown.WriteText(os.Stderr)
	}
	if *tdOut != "" {
		if err := writeJSONFile(*tdOut, doc.Topdown); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: write topdown summary: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "doppiobench: topdown summary written to %s (%d rounds)\n",
			*tdOut, doc.Topdown.Rounds)
	}
	if *explOut != "" {
		doc := struct {
			explain.Report
			Records []*explain.Record `json:"records"`
		}{calib, explain.Default().Records(64)}
		if doc.Records == nil {
			doc.Records = []*explain.Record{}
		}
		if err := writeJSONFile(*explOut, doc); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: write calibration: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "doppiobench: calibration report written to %s (%d records)\n",
			*explOut, len(doc.Records))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: %v\n", err)
			os.Exit(1)
		}
		err = flightrec.WriteChromeTrace(f, rec.Window())
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "doppiobench: flight-recorder timeline written to %s (%d events, %d dropped; open in ui.perfetto.dev)\n",
			*traceOut, rec.Len(), rec.Dropped())
	}
	if *qlogOut != "" {
		f, err := os.Create(*qlogOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: %v\n", err)
			os.Exit(1)
		}
		err = obs.Default().Log.WriteJSONL(f, 0)
		if cErr := f.Close(); err == nil {
			err = cErr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: write query log: %v\n", err)
			os.Exit(1)
		}
		st := obs.Default().Log.Stats()
		fmt.Fprintf(os.Stderr, "doppiobench: query log written to %s (%d events retained of %d submitted)\n",
			*qlogOut, st.Kept, st.Submitted)
	}
	if *baseFile != "" {
		base, err := os.ReadFile(*baseFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: read baseline: %v\n", err)
			os.Exit(2)
		}
		var cur []byte
		if *baseCur != "" {
			if cur, err = os.ReadFile(*baseCur); err != nil {
				fmt.Fprintf(os.Stderr, "doppiobench: read candidate: %v\n", err)
				os.Exit(2)
			}
		} else if cur, err = json.Marshal(doc); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: encode results for baseline compare: %v\n", err)
			os.Exit(1)
		}
		report, err := obs.CompareBaseline(base, cur, *baseTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: baseline compare: %v\n", err)
			os.Exit(2)
		}
		if *baseRep != "" {
			if err := writeJSONFile(*baseRep, report); err != nil {
				fmt.Fprintf(os.Stderr, "doppiobench: write baseline report: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "doppiobench: baseline report written to %s\n", *baseRep)
		}
		report.WriteText(os.Stderr)
		if !report.Pass {
			os.Exit(3)
		}
	}
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cErr := f.Close(); err == nil {
		err = cErr
	}
	return err
}

// jsonMode switches render from text tables to result collection.
var jsonMode bool

// results accumulates experiment results for the -json document.
var results []namedResult

func render(r any, err error, out io.Writer) {
	if err != nil {
		return
	}
	if jsonMode {
		results = append(results, namedResult{resultName(r), r})
		return
	}
	if v, ok := r.(interface{ Render(io.Writer) }); ok {
		v.Render(out)
	}
}

// resultName derives the experiment name from the result's type
// (e.g. *experiments.Table1Result → "table1").
func resultName(r any) string {
	n := strings.TrimPrefix(fmt.Sprintf("%T", r), "*experiments.")
	return strings.ToLower(strings.TrimSuffix(n, "Result"))
}
