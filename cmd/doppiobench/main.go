// Command doppiobench regenerates every table and figure of the paper's
// evaluation and prints them next to the published values.
//
// Usage:
//
//	doppiobench [-experiment all|table1|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15]
//	            [-sample N] [-seed S] [-selectivity F]
//
// -sample sets how many rows the functional engines execute per
// measurement (work is extrapolated to the paper's row counts); larger
// samples tighten the work estimates at the cost of runtime.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doppiodb/internal/experiments"
)

func main() {
	var (
		which = flag.String("experiment", "all", "experiment to run (all, table1, fig8..fig15)")
		sampl = flag.Int("sample", experiments.DefaultSampleRows, "functional sample rows")
		seed  = flag.Int64("seed", 1, "workload seed")
		sel   = flag.Float64("selectivity", experiments.DefaultSelectivity, "hit selectivity")
	)
	flag.Parse()
	cfg := experiments.Config{SampleRows: *sampl, Seed: *seed, Selectivity: *sel}

	type exp struct {
		name string
		run  func() error
	}
	out := os.Stdout
	all := []exp{
		{"table1", func() error { r, err := experiments.Table1(cfg); render(r, err, out); return err }},
		{"fig8", func() error { r, err := experiments.Figure8(cfg); render(r, err, out); return err }},
		{"fig9", func() error { r, err := experiments.Figure9(cfg); render(r, err, out); return err }},
		{"fig10", func() error { r, err := experiments.Figure10(cfg); render(r, err, out); return err }},
		{"fig11", func() error { r, err := experiments.Figure11(cfg); render(r, err, out); return err }},
		{"fig12", func() error { r, err := experiments.Figure12(cfg); render(r, err, out); return err }},
		{"fig13", func() error { r, err := experiments.Figure13(cfg); render(r, err, out); return err }},
		{"fig14", func() error {
			a, err := experiments.Figure14a(cfg)
			render(a, err, out)
			if err != nil {
				return err
			}
			b, err := experiments.Figure14b(cfg)
			render(b, err, out)
			if err != nil {
				return err
			}
			c, err := experiments.Figure14c(cfg)
			render(c, err, out)
			return err
		}},
		{"fig15", func() error { r, err := experiments.Figure15(cfg); render(r, err, out); return err }},
		{"platform", func() error { r, err := experiments.Platform(cfg); render(r, err, out); return err }},
		{"nextgen", func() error { r, err := experiments.NextGen(cfg); render(r, err, out); return err }},
		{"ablations", func() error {
			if r, err := experiments.AblationGapHold(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationArbiter(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationEngineConfig(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationSoftEngines(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			if r, err := experiments.AblationSubstring(cfg); err != nil {
				return err
			} else {
				render(r, err, out)
			}
			r, err := experiments.AblationPrescan(cfg)
			render(r, err, out)
			return err
		}},
	}

	ran := false
	for _, e := range all {
		if *which != "all" && !strings.EqualFold(*which, e.name) {
			continue
		}
		ran = true
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "doppiobench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "doppiobench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

func render(r any, err error, out io.Writer) {
	if err != nil {
		return
	}
	if v, ok := r.(interface{ Render(io.Writer) }); ok {
		v.Render(out)
	}
}
