package main

import (
	"fmt"
	"io"

	"doppiodb/internal/core"
	"doppiodb/internal/experiments"
	"doppiodb/internal/mdb"
	"doppiodb/internal/sql"
	"doppiodb/internal/workload"
)

// planQueries is the paper's query suite, the same statements the golden
// plan-shape tests pin. Q2 appears twice so the second run's plan shows
// the cache=hit stamp.
var planQueries = []string{
	`SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%'`,
	`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '` + workload.Q2 + `')`,
	`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '` + workload.Q2 + `')`,
	`SELECT count(*) FROM address_table WHERE CONTAINS('Strasse & Zurich')`,
	`SELECT count(*) FROM address_table WHERE REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) <> 0`,
	`SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, count(o_orderkey)
  FROM customer
  LEFT OUTER JOIN orders ON
    c_custkey = o_custkey
    AND o_comment NOT LIKE '%special%requests%'
  GROUP BY c_custkey
) AS c_orders (c_custkey, c_count)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`,
}

// printPlans executes every paper query on a hardware-backed system with
// the cost-model advisor attached and prints each executed operator tree:
// per-operator placement, plan-cache status, and observed row counts.
func printPlans(cfg experiments.Config, out io.Writer) error {
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		return err
	}
	rows := cfg.SampleRows
	if rows <= 0 {
		rows = experiments.DefaultSampleRows
	}
	sel := cfg.Selectivity
	if sel == 0 {
		sel = experiments.DefaultSelectivity
	}
	data, _ := workload.NewGenerator(cfg.Seed, workload.DefaultStrLen).
		Table(rows, workload.HitQ2, sel)
	if _, err := s.DB.LoadAddressTable("address_table", data); err != nil {
		return err
	}
	tp := workload.GenerateTPCH(cfg.Seed, 0.01, 0.01)
	cust, err := s.DB.CreateTable("customer", mdb.ColSpec{Name: "c_custkey", Kind: mdb.KindInt})
	if err != nil {
		return err
	}
	for _, c := range tp.Customers {
		if err := cust.AppendRow(c.CustKey); err != nil {
			return err
		}
	}
	ord, err := s.DB.CreateTable("orders",
		mdb.ColSpec{Name: "o_orderkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_custkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_comment", Kind: mdb.KindString})
	if err != nil {
		return err
	}
	for _, o := range tp.Orders {
		if err := ord.AppendRow(o.OrderKey, o.CustKey, o.Comment); err != nil {
			return err
		}
	}

	e := sql.NewEngine(s.DB)
	e.Advisor = s
	for _, q := range planQueries {
		res, err := e.Query(q)
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		fmt.Fprintf(out, "%s\n", q)
		if res.Plan == nil {
			fmt.Fprintln(out, "  (no plan captured)")
			continue
		}
		for _, l := range res.Plan.Lines(true) {
			fmt.Fprintf(out, "  %s\n", l)
		}
		fmt.Fprintln(out)
	}
	return nil
}
