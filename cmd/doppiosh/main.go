// Command doppiosh is an interactive SQL shell over the simulated doppioDB
// system: it boots the platform, optionally loads a dataset, and executes
// SELECT statements — including the hardware operator REGEXP_FPGA — printing
// result tables and per-query accounting.
//
// Usage:
//
//	doppiosh [-rows N] [-selectivity F] [-tpch SF] [-auto] [-shared-scans]
//	         [-e 'stmt;...'] [-mon ADDR] [-faults SPEC]
//
// Without -e it reads statements (terminated by `;`) from stdin. -rows
// preloads `address_table` with the paper's workload; -tpch additionally
// loads `customer` and `orders`. -auto enables the §9 cost-based optimizer
// that transparently offloads REGEXP_LIKE to the FPGA when predicted faster.
//
// Meta-commands: `\metrics` dumps every telemetry counter and gauge of the
// running system (PU utilization, QPI bytes, DSM status counters, allocator
// gauges, operator counts), `\trace` prints the last query's lifecycle span
// tree with simulated and wall-clock durations, `\plan` prints the last
// query's executed physical-operator tree — per-operator placement
// (software/fpga/hybrid), plan-cache status, and observed row counts,
// `\explain` prints the last
// query's placement decision record — candidate plans with predicted cost
// terms, the chosen plan's reason, and predicted-vs-actual error per term
// (`EXPLAIN [ANALYZE] SELECT ...` works as a statement, too), `\health`
// shows the AFU handshake state, the per-engine circuit breaker, every
// fault/recovery counter, and the cost-model calibration report with drift
// alarms, `\slo` prints the windowed SLO report (per-class latency
// quantiles, availability SLIs, burn rates and the alert state),
// `\querylog [N]` prints the N most recent wide query events from the
// tail-biased log, `\topdown` prints the fabric's cumulative topdown
// utilization table (per-engine cycle buckets, the QPI link ledger, the
// conservation check) plus the last query's bottleneck verdict,
// `\dump [FILE]` writes the flight-recorder window (to stdout, or
// to FILE — a .json suffix selects the Chrome-trace format for
// ui.perfetto.dev), `\q` quits. -faults injects hardware faults (same spec
// grammar as doppiobench); degraded queries are marked on their status line
// and trigger an automatic flight-recorder dump to stderr. -mon ADDR serves
// the live monitoring endpoint (/metrics, /health, /trace, /calibration,
// /utilization, /debug/pprof); SIGQUIT dumps the flight-recorder window to stderr at any
// time.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"doppiodb/internal/core"
	"doppiodb/internal/doppiomon"
	"doppiodb/internal/explain"
	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/mdb"
	"doppiodb/internal/plan"
	"doppiodb/internal/sim"
	"doppiodb/internal/sql"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/workload"
)

// lastTrace is the span tree of the most recent query, for \trace.
var lastTrace *telemetry.Span

// lastDecision is the placement decision record of the most recent query
// that carried one, for \explain.
var lastDecision *explain.Record

// lastPlan is the executed physical-operator tree of the most recent
// query, for \plan.
var lastPlan *plan.Node

func main() {
	var (
		rows        = flag.Int("rows", 100_000, "preloaded address_table rows (0: none)")
		sel         = flag.Float64("selectivity", 0.2, "hit selectivity of the preload")
		tpch        = flag.Float64("tpch", 0, "also load TPC-H customer/orders at this scale factor")
		auto        = flag.Bool("auto", false, "enable cost-based REGEXP_LIKE offload (§9)")
		eval        = flag.String("e", "", "execute these statements and exit")
		monAddr     = flag.String("mon", "", "serve the live monitoring endpoint on this address (e.g. 127.0.0.1:9137)")
		fspec       = flag.String("faults", "", "hardware fault injection spec, e.g. 'stuck-done=0.2,engine-drop=1@8+3,qpi=0.5,seed=42'")
		budget      = flag.Duration("query-budget", 0, "per-query simulated deadline (0: none); over-budget queries fail with a deadline error instead of queueing")
		sharedScans = flag.Bool("shared-scans", false, "coalesce concurrent identical FPGA scans into one HAL job group")
	)
	flag.Parse()

	if *fspec != "" {
		in, err := faults.NewFromSpec(*fspec)
		fatal(err)
		faults.SetDefault(in)
		fmt.Fprintf(os.Stderr, "fault injection active: %s\n", *fspec)
	}
	sys, err := core.NewSystem(core.Options{RegionBytes: 2 << 30, SharedScans: *sharedScans})
	fatal(err)
	if *sharedScans {
		fmt.Fprintln(os.Stderr, "shared-scan coalescing enabled")
	}
	// Black-box behaviour: when the fault layer degrades a query, the
	// recorder window lands on stderr; SIGQUIT forces the same dump.
	sys.Rec.SetSink(os.Stderr)
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			fmt.Fprintln(os.Stderr, "doppiosh: SIGQUIT: flight-recorder window follows")
			sys.Rec.WriteText(os.Stderr)
		}
	}()
	if *monAddr != "" {
		mon, err := doppiomon.Start(*monAddr, doppiomon.Config{
			Registry:    sys.Tel,
			Recorder:    sys.Rec,
			Health:      sys.HAL,
			Calibration: sys.Audit,
			Obs:         sys.Obs,
		})
		fatal(err)
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "monitoring endpoint on http://%s\n", mon.Addr())
	}
	if *rows > 0 {
		data, hits := workload.NewGenerator(1, workload.DefaultStrLen).
			Table(*rows, workload.HitQ2, *sel)
		_, err := sys.DB.LoadAddressTable("address_table", data)
		fatal(err)
		fmt.Fprintf(os.Stderr, "loaded address_table: %d rows (%d Q2 hits)\n", len(data), hits)
	}
	if *tpch > 0 {
		loadTPCH(sys.DB, *tpch)
	}
	engine := sql.NewEngine(sys.DB)
	if *budget > 0 {
		engine.QueryBudget = sim.FromDuration(*budget)
		fmt.Fprintf(os.Stderr, "per-query budget: %v (simulated)\n", *budget)
	}
	if *auto {
		engine.Advisor = sys
		fmt.Fprintln(os.Stderr, "cost-based hardware offload enabled")
	}
	fmt.Fprintf(os.Stderr, "%s\n", sys.Device)

	if *eval != "" {
		for _, stmt := range splitStatements(*eval) {
			if meta(sys, stmt) {
				continue
			}
			run(engine, stmt)
		}
		return
	}
	fmt.Fprintln(os.Stderr, `doppiosh — end statements with ';', \metrics for telemetry, exit with \q`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Fprint(os.Stderr, "doppiodb> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		if meta(sys, line) {
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			for _, stmt := range splitStatements(buf.String()) {
				if meta(sys, stmt) {
					continue
				}
				run(engine, stmt)
			}
			buf.Reset()
		}
		prompt()
	}
}

// meta executes a backslash meta-command, reporting whether cmd was one.
func meta(sys *core.System, cmd string) bool {
	trimmed := strings.TrimSpace(cmd)
	if rest, ok := strings.CutPrefix(trimmed, `\dump`); ok && (rest == "" || rest[0] == ' ') {
		dumpRecorder(sys.Rec, strings.TrimSpace(rest))
		return true
	}
	if rest, ok := strings.CutPrefix(trimmed, `\querylog`); ok && (rest == "" || rest[0] == ' ') {
		n := 20
		if v, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil && v >= 0 {
			n = v
		}
		sys.Obs.Log.WriteText(os.Stdout, n)
		return true
	}
	switch trimmed {
	case `\metrics`:
		sys.Tel.WriteText(os.Stdout)
		if lastTrace != nil {
			fmt.Println("\nlast query trace:")
			lastTrace.WriteTree(os.Stdout)
		}
		return true
	case `\trace`:
		if lastTrace == nil {
			fmt.Fprintln(os.Stderr, "no query traced yet")
			return true
		}
		lastTrace.WriteTree(os.Stdout)
		return true
	case `\plan`:
		if lastPlan == nil {
			fmt.Fprintln(os.Stderr, "no plan captured yet (run a query first)")
			return true
		}
		for _, l := range lastPlan.Lines(true) {
			fmt.Println(l)
		}
		return true
	case `\explain`:
		if lastDecision == nil {
			fmt.Fprintln(os.Stderr, "no placement decision recorded yet (run a REGEXP_LIKE/REGEXP_FPGA query first)")
			return true
		}
		lastDecision.WriteText(os.Stdout)
		return true
	case `\health`:
		printHealth(sys)
		return true
	case `\slo`:
		sys.Obs.SLO.Report().WriteText(os.Stdout)
		return true
	case `\topdown`:
		sys.HAL.Topdown().WriteText(os.Stdout)
		if lastDecision != nil && lastDecision.Topdown != nil {
			fmt.Println("last query " + lastDecision.Topdown.Line())
		}
		return true
	}
	return false
}

// dumpRecorder writes the flight-recorder window: to stdout without an
// argument, otherwise to the named file (a .json suffix selects the
// Chrome-trace format; anything else the text dump).
func dumpRecorder(rec *flightrec.Recorder, file string) {
	if file == "" {
		rec.WriteText(os.Stdout)
		return
	}
	f, err := os.Create(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dump: %v\n", err)
		return
	}
	if strings.HasSuffix(file, ".json") {
		err = flightrec.WriteChromeTrace(f, rec.Window())
	} else {
		rec.WriteText(f)
	}
	if cErr := f.Close(); err == nil {
		err = cErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dump: %v\n", err)
		return
	}
	kind := "text dump"
	if strings.HasSuffix(file, ".json") {
		kind = "Chrome-trace timeline (open in ui.perfetto.dev)"
	}
	fmt.Fprintf(os.Stderr, "flight recorder: %d event(s) written to %s as %s\n", rec.Len(), file, kind)
}

// printHealth renders the robustness layer's view of the hardware: the AAL
// handshake, the per-engine circuit breaker, and the fault/recovery counters.
func printHealth(sys *core.System) {
	fmt.Printf("AFU present: %v\n", sys.HAL.AFUPresent())
	fmt.Printf("runtime state: %s   fabric resets: %d\n\n", sys.HAL.State(), sys.HAL.FabricResets())
	fmt.Println("engine  state        consec-fails  jobs      fails  readmissions")
	for _, h := range sys.HAL.Health() {
		state := "healthy"
		if h.Quarantined {
			state = "QUARANTINED"
		}
		fmt.Printf("%6d  %-11s  %12d  %8d  %5d  %12d\n",
			h.Engine, state, h.ConsecFails, h.Jobs, h.Fails, h.Readmissions)
	}
	fmt.Println()
	for _, name := range []string{
		"hal.faults.stuck_done", "hal.faults.config_corrupt",
		"hal.faults.status_corrupt", "hal.faults.handshake_loss",
		"hal.faults.engine_drop", "hal.faults.qpi_degraded",
		"hal.retries", "hal.rehandshakes", "hal.status_scrubbed",
		"hal.engine.quarantined", "hal.engine.readmitted",
		"core.fallback.software",
	} {
		fmt.Printf("%-28s %d\n", name, sys.Tel.Counter(name).Value())
	}
	fmt.Println()
	rep := sys.Obs.SLO.Report()
	alert := "quiet"
	if rep.AlertActive {
		alert = "FIRING"
	}
	fmt.Printf("SLO: %d submitted, %d errors, burn fast %.2fx / slow %.2fx, alert %s (%d fired)\n\n",
		rep.Submitted, rep.Errors, rep.FastBurn, rep.SlowBurn, alert, rep.AlertsFired)
	sys.Audit.Stats().WriteText(os.Stdout)
}

// splitStatements splits on `;` outside string literals.
func splitStatements(src string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\'':
			inStr = !inStr
			cur.WriteByte(c)
		case c == ';' && !inStr:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func run(engine *sql.Engine, stmt string) {
	start := time.Now()
	res, err := engine.Query(stmt)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	if res.Trace != nil {
		lastTrace = res.Trace
	}
	if res.Decision != nil {
		lastDecision = res.Decision
	}
	if res.Plan != nil {
		lastPlan = res.Plan
	}
	printTable(res)
	note := ""
	if res.FastPath != "" {
		note = " via " + res.FastPath
	}
	if res.UDF != nil {
		note += fmt.Sprintf(", FPGA %.3f ms simulated", res.UDF.HWSeconds*1e3)
		if res.UDF.Degraded {
			note += " [DEGRADED: software fallback]"
		}
	}
	fmt.Fprintf(os.Stderr, "%d row(s) in %v%s\n\n", len(res.Rows), elapsed.Round(time.Microsecond), note)
}

// printTable renders a result set with column-width alignment, capping very
// long outputs.
func printTable(res *sql.Result) {
	const maxRows = 50
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, 0, len(res.Rows))
	for r, row := range res.Rows {
		if r >= maxRows {
			break
		}
		line := make([]string, len(row))
		for i, v := range row {
			s := "NULL"
			if v != nil {
				s = fmt.Sprint(v)
			}
			line[i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		cells = append(cells, line)
	}
	for i, c := range res.Cols {
		fmt.Printf("%-*s  ", widths[i], c)
		_ = i
	}
	fmt.Println()
	for i := range res.Cols {
		fmt.Printf("%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Println()
	for _, line := range cells {
		for i, s := range line {
			fmt.Printf("%-*s  ", widths[i], s)
		}
		fmt.Println()
	}
	if len(res.Rows) > maxRows {
		fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
	}
}

func loadTPCH(db *mdb.DB, sf float64) {
	tp := workload.GenerateTPCH(7, sf, 0.01)
	cust, err := db.CreateTable("customer", mdb.ColSpec{Name: "c_custkey", Kind: mdb.KindInt})
	fatal(err)
	for _, c := range tp.Customers {
		fatal(cust.AppendRow(c.CustKey))
	}
	ord, err := db.CreateTable("orders",
		mdb.ColSpec{Name: "o_orderkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_custkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_comment", Kind: mdb.KindString})
	fatal(err)
	for _, o := range tp.Orders {
		fatal(ord.AppendRow(o.OrderKey, o.CustKey, o.Comment))
	}
	fmt.Fprintf(os.Stderr, "loaded TPC-H SF %.2f: %d customers, %d orders\n",
		sf, len(tp.Customers), len(tp.Orders))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "doppiosh: %v\n", err)
		os.Exit(1)
	}
}
